// Package serverqueuegauge is the justified-exception fixture for the
// server queue path: a bare atomic that is deliberately outside the Kit.
// The depth gauge only feeds the /metrics endpoint — it never gates a
// decision on the measured synchronization path, so it cannot skew the
// classic-vs-lockfree comparison, and routing it through a Kit would drag
// instrumentation overhead into every scrape. The //lint:ignore records
// that reasoning where splash4-vet can hold it to account: remove the
// justification and the kit-bypass diagnostic comes back.
package serverqueuegauge

import "sync/atomic"

type gauge struct {
	//lint:ignore sync4vet-kit-bypass metrics-only depth gauge, never read on the measured sync path
	depth atomic.Int64
}

func (g *gauge) enter() { g.depth.Add(1) }
func (g *gauge) exit()  { g.depth.Add(-1) }
func (g *gauge) read() int64 {
	return g.depth.Load()
}
