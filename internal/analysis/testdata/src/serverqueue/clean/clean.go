// Package serverqueuefix is the golden fixture for splash4d's admission
// path: the distilled job pipeline — lock-free ring admission, non-blocking
// wake tokens, a drain-until-miss worker loop — loaded under a workload
// import path so kit-bypass is armed. The shape must stay silent under
// every analyzer: all synchronization flows through sync4 constructs and
// channels, and the drain loop's progress comes from TryGet, not from
// spinning on plain memory.
package serverqueuefix

import (
	"repro/internal/sync4"
	"repro/internal/sync4/lockfree"
)

type pipeline struct {
	queue    sync4.Queue
	wake     chan struct{}
	stop     chan struct{}
	accepted sync4.Counter
	rejected sync4.Counter
}

func newPipeline(capacity int) *pipeline {
	kit := lockfree.New()
	return &pipeline{
		queue:    kit.NewQueue(capacity),
		wake:     make(chan struct{}, capacity),
		stop:     make(chan struct{}),
		accepted: kit.NewCounter(),
		rejected: kit.NewCounter(),
	}
}

// submit admits one job sequence number; a full ring is a rejection, and
// the wake token is offered without blocking.
func (p *pipeline) submit(seq int64) bool {
	if !p.queue.TryPut(seq) {
		p.rejected.Inc()
		return false
	}
	p.accepted.Inc()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return true
}

// worker sleeps on the wake channel and drains the ring until TryGet
// misses.
func (p *pipeline) worker(run func(int64)) {
	for {
		select {
		case <-p.stop:
			return
		case <-p.wake:
			for {
				seq, ok := p.queue.TryGet()
				if !ok {
					break
				}
				run(seq)
			}
		}
	}
}
