package rufixbad

import "testing"

// TestQuiet checks the helpers; a test doc MUST carry a tag too. // want req-untagged "carries no requirement ID"
func TestQuiet(t *testing.T) {
	if quiet(&Tracker{}) != 0 {
		t.Fatal("fresh tracker is nonzero")
	}
}
