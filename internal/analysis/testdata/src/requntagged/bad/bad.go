// Package rufixbad is spec surface (an internal/sync4 path) whose doc
// comments promise behavior in normative language without declaring any
// requirement ID. Every keyword below is a promise nobody can cite.
package rufixbad

// Reserve MUST pin its arena before the first concurrent use. // want req-untagged "carries no requirement ID"
func Reserve() {}

// A tracker SHALL NOT lose an update between episodes. // want req-untagged "carries no requirement ID"
type Tracker struct{ n int }

// Sink describes the drain side of the tracker.
type Sink interface {
	// Drain MAY spin while the queue refills. // want req-untagged "carries no requirement ID"
	Drain() int
}

// quiet helpers with lowercase prose stay silent.
func quiet(t *Tracker) int { return t.n }
