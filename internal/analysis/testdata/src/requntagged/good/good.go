// Package rufixgood keeps its normative language accounted for: every
// keyword lives inside a tagged doc comment, everything else is lowercase
// prose. All analyzers must stay silent.
package rufixgood

// Observe reports the tracked total; the advisory requirement below keeps
// the group exempt from the untagged check.
//
//sync4:req SYNC4-RUG-001 v1 SHOULD keep Observe allocation-free in steady state.
func Observe() int { return 0 }

// Fold should not reorder its inputs; the requirement is declared on the
// tag line, so the prose can stay lowercase.
//
//sync4:req SYNC4-RUG-002 v1 SHOULD NOT reorder inputs within one fold episode.
func Fold() {}

// helper prose says what the code does without promising anything.
func helper() int { return Observe() }
