// Package pmfixsup carries a justified mixed-access waiver: the plain read
// is acknowledged and documented rather than migrated.
package pmfixsup

import (
	"sync/atomic"

	"repro/internal/core"
)

type tally struct {
	ops int64
}

func run(threads, iters int) int64 {
	t := &tally{}
	core.Parallel(threads, func(tid int) {
		for i := 0; i < iters; i++ {
			atomic.AddInt64(&t.ops, 1)
			//lint:ignore sync4vet-plain-atomic-mix fixture: monotonic counter, a stale read only delays the early exit
			if t.ops > 100 {
				return
			}
		}
	})
	return atomic.LoadInt64(&t.ops)
}
