// Package pmfixbad seeds mixed plain/atomic accesses: fields updated with
// sync/atomic from parallel workers and then read (and reset) with plain
// loads/stores on the same concurrent path — each plain access demotes every
// atomic on the field to an ordinary data race.
package pmfixbad

import (
	"sync/atomic"

	"repro/internal/core"
)

// tally keeps its raw counter at offset 0 so only the mix is at fault, not
// the alignment.
type tally struct {
	ops int64
}

func run(threads, iters int) int64 {
	t := &tally{}
	core.Parallel(threads, func(tid int) {
		for i := 0; i < iters; i++ {
			atomic.AddInt64(&t.ops, 1)
			if t.ops > 100 { // want plain-atomic-mix "plain load of field ops"
				return
			}
		}
	})
	return atomic.LoadInt64(&t.ops)
}

type phase struct {
	cur int64
}

func step(threads, iters int) int64 {
	p := &phase{}
	core.Parallel(threads, func(tid int) {
		for i := 0; i < iters; i++ {
			atomic.AddInt64(&p.cur, 1)
		}
		p.cur = 0 // want plain-atomic-mix "plain store of field cur"
	})
	return atomic.LoadInt64(&p.cur)
}
