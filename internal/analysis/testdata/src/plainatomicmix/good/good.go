// Package pmfixgood exercises every plain-access exemption: constructor
// writes before the field is shared, single-thread `tid == 0` gated spans,
// and accesses from the non-concurrent spawner after the join — plus the
// recommended fix, a field that is atomic everywhere.
package pmfixgood

import (
	"sync/atomic"

	"repro/internal/core"
)

type tally struct {
	ops int64
}

var last int64

func run(threads, iters int, seed int64) int64 {
	t := &tally{}
	t.ops = seed // plain constructor write: runs before any sharing
	core.Parallel(threads, func(tid int) {
		if tid == 0 {
			last = t.ops // single-thread gated plain load
		}
		for i := 0; i < iters; i++ {
			atomic.AddInt64(&t.ops, 1)
		}
	})
	return t.ops - last // spawner reads after the join: not concurrent
}
