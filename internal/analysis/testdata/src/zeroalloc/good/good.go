// Package zafixgood exercises every allocation shape the zeroalloc analyzer
// deliberately exempts: self-append growth of a caller-owned buffer, the
// strconv.Append* return idiom, constant panics, pointer/constant interface
// conversions, and typed atomics. None of it may diagnose.
package zafixgood

import (
	"strconv"
	"sync/atomic"
)

type sink struct {
	buf  []byte
	vals []int64
	ops  atomic.Int64
}

//sync4:zeroalloc
func (s *sink) push(v int64) {
	s.vals = append(s.vals, v) // self-append: amortized growth is exempt
	s.ops.Add(1)
}

// encode grows a caller-owned buffer, strconv.Append* style: the append
// result is returned, so the caller keeps ownership of the storage.
//
//sync4:zeroalloc
func encode(buf []byte, v int64) []byte {
	buf = strconv.AppendInt(buf, v, 10)
	return append(buf, '\n')
}

//sync4:zeroalloc
func (s *sink) guard(i int) {
	if i < 0 {
		panic("sink: negative index") // constant panic value: static data
	}
	s.buf = encode(s.buf, int64(i))
}

// report boxes only free things: a pointer and an untyped constant.
//
//sync4:zeroalloc
func (s *sink) report() {
	emit(s)  // pointer boxing is free
	emit(42) // constant boxing is compiler-materialized static data
}

//go:noinline
func emit(v any) { _ = v }
