// Package zafixbad seeds one finding per zeroalloc site class: allocation
// in the annotated body, allocation in a transitive static callee, closure
// capture, interface boxing, string building, and fresh-slice append.
package zafixbad

import "fmt"

type ring struct {
	buf []int64
}

//sync4:zeroalloc
func (r *ring) push(v int64) {
	r.buf = append(r.buf, v) // self-append: exempt
	tmp := make([]int64, 4)  // want zeroalloc "make allocates"
	tmp[0] = v
	r.describe(v)
}

// describe is not annotated itself; its allocation is reachable from push.
func (r *ring) describe(v int64) {
	_ = fmt.Sprintf("v=%d", v) // want zeroalloc "call to fmt.Sprintf allocates"
}

//sync4:zeroalloc
func label(a, b string) string {
	return a + b // want zeroalloc "string concatenation allocates"
}

//sync4:zeroalloc
func fresh(src []int64) []int64 {
	dst := append([]int64(nil), src...) // want zeroalloc "append into a fresh slice"
	return dst
}

//sync4:zeroalloc
func box(v int64) any {
	return any(v) // want zeroalloc "boxes"
}

//sync4:zeroalloc
func escape() *ring {
	return &ring{} // want zeroalloc "escaping composite literal"
}

//sync4:zeroalloc
func capture(n int64) func() int64 {
	total := int64(0)
	return func() int64 { // want zeroalloc "closure captures local variables"
		total += n
		return total
	}
}

var spawned = make(chan struct{}, 1)

//sync4:zeroalloc
func spawn() {
	go func() { // want zeroalloc "go statement allocates"
		spawned <- struct{}{}
	}()
}
