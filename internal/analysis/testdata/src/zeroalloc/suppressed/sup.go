// Package zafixsup exercises zeroalloc waivers: a justified one silencing a
// real allocation site on an annotated path counts as suppressed, and a
// waiver parked on an allocation-free line is flagged as stale.
package zafixsup

type table struct {
	rows [][]int64
}

//sync4:zeroalloc
func (t *table) grow(width int) {
	//lint:ignore sync4vet-zeroalloc fixture: one-time growth outside the timed region
	row := make([]int64, width)
	t.rows = append(t.rows, row) // self-append: exempt anyway
}

//lint:ignore sync4vet-zeroalloc nothing on this path allocates // want unused-suppression "silences nothing"
func (t *table) depth() int { return len(t.rows) }
