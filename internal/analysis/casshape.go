package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CASShape checks every CompareAndSwap retry loop for the three canonical
// lock-free defects, modeled on the suite's own reduction and Treiber-stack
// idioms in internal/sync4/lockfree:
//
//  1. stale expected value — the expected operand is a local captured
//     before the loop and never reloaded on the retry path, so after one
//     failure the loop spins forever (or worse, succeeds against a value
//     it never observed);
//  2. side effects on the retry path — shared-memory writes that execute
//     once per failed attempt instead of once per successful publish
//     (the lost-update shape);
//  3. ABA-prone pointer reuse — a pointer CAS whose new value is neither
//     freshly allocated, nor derived from the expected value, nor a
//     reload, so a recycled address can satisfy the compare while the
//     structure underneath has changed.
var CASShape = &Analyzer{
	Name: "cas-shape",
	Doc: "check CompareAndSwap retry loops for stale expected values, " +
		"retry-path side effects, and ABA-prone pointer reuse",
	Family: FamilyInterprocedural,
	Run:    runCASShape,
}

func runCASShape(pass *Pass) {
	for _, file := range pass.Files {
		// Fresh allocations are collected file-wide: the Treiber push idiom
		// allocates its node before the retry loop, and object identity
		// keeps unrelated functions' locals from colliding.
		fresh := freshLocals(pass.Info, file)
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkCASLoop(pass, loop, fresh)
			return true
		})
	}
}

// checkCASLoop analyzes one for loop that (possibly) retries a CAS. CAS
// calls inside nested loops or literals belong to those constructs and are
// skipped here — the outer Inspect visits them separately.
func checkCASLoop(pass *Pass, loop *ast.ForStmt, fresh map[types.Object]bool) {
	var casCalls []*ast.CallExpr
	eachDirect(loop, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isCASCall(pass.Info, call) {
			casCalls = append(casCalls, call)
		}
	})
	if len(casCalls) == 0 {
		return
	}
	assigned := assignedObjects(pass.Info, loop)

	for _, cas := range casCalls {
		checkStaleExpected(pass, loop, cas, assigned)
		checkABAPointer(pass, loop, cas, fresh, assigned)
	}
	checkRetrySideEffects(pass, loop, casCalls, fresh)
}

// isCASCall matches x.CompareAndSwap(old, new) on a sync/atomic value or a
// sync4 construct.
func isCASCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "CompareAndSwap" || len(call.Args) != 2 {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	path := typePkgPath(tv.Type)
	return path == "sync/atomic" || strings.HasSuffix(path, "internal/sync4") ||
		strings.HasSuffix(path, "internal/sync4/lockfree")
}

// checkStaleExpected is rule 1: the expected operand must be re-derived on
// every retry. Constants and inline calls re-evaluate by construction; a
// plain local is stale when it is declared outside the loop and nothing in
// the loop assigns it.
func checkStaleExpected(pass *Pass, loop *ast.ForStmt, cas *ast.CallExpr, assigned map[types.Object]bool) {
	exp := ast.Unparen(cas.Args[0])
	id, ok := exp.(*ast.Ident)
	if !ok {
		return // literals, field loads, and calls re-evaluate each attempt
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	if _, isConst := obj.(*types.Const); isConst {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
		return // declared inside the loop: fresh every iteration
	}
	if assigned[obj] {
		return // reloaded somewhere on the retry path
	}
	pass.Reportf(cas.Args[0].Pos(),
		"expected value %q is not reloaded after a failed CompareAndSwap: the retry loop spins on a stale snapshot", id.Name)
}

// checkABAPointer is rule 3, applied only to pointer-typed CAS. The new
// value must be freshly allocated, derived from the expected value, nil, or
// a reload of the same location; anything else can recycle an address and
// slip past the compare.
func checkABAPointer(pass *Pass, loop *ast.ForStmt, cas *ast.CallExpr, fresh, assigned map[types.Object]bool) {
	if !isPointerCAS(pass.Info, cas) {
		return
	}
	newArg := ast.Unparen(cas.Args[1])
	if isFreshExpr(pass.Info, newArg, fresh) {
		return
	}
	if exprIsNil(pass.Info, newArg) {
		return
	}
	if containsLoadCall(newArg) {
		return
	}
	// Derived from the expected value (old.next and friends).
	expRoots := identObjects(pass.Info, cas.Args[0])
	for obj := range identObjects(pass.Info, newArg) {
		if expRoots[obj] {
			return
		}
		// A local recomputed inside the loop from shared state is a form
		// of reload.
		if assigned[obj] && obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			return
		}
	}
	pass.Reportf(cas.Args[1].Pos(),
		"ABA-prone CompareAndSwap on a pointer: the new value is neither freshly allocated nor derived from the expected value, so a recycled address can pass the compare")
}

// isPointerCAS reports whether the CAS operates on pointer values:
// atomic.Pointer[T] receivers or unsafe.Pointer operands.
func isPointerCAS(info *types.Info, cas *ast.CallExpr) bool {
	sel := ast.Unparen(cas.Fun).(*ast.SelectorExpr)
	if tv, ok := info.Types[sel.X]; ok {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Name() == "Pointer" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	if tv, ok := info.Types[cas.Args[0]]; ok {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
			return true
		}
	}
	return false
}

// checkRetrySideEffects is rule 2: shared-memory mutations on the retry
// path run once per failed attempt. The success region — the body of
// `if cas { ... }`, or everything after `if !cas { continue/return/break }`
// — is exempt, as are writes into structures freshly allocated this
// iteration (linking a new node before publishing it is the idiom).
func checkRetrySideEffects(pass *Pass, loop *ast.ForStmt, casCalls []*ast.CallExpr, fresh map[types.Object]bool) {
	success := successRegions(loop, casCalls)
	inSuccess := func(p token.Pos) bool {
		for _, s := range success {
			if s.contains(p) {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos) {
		pass.Reportf(pos,
			"side effect on the CompareAndSwap retry path: this write runs once per failed attempt, not once per publish")
	}
	eachDirect(loop, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if pos, shared := sharedWriteTarget(pass.Info, lhs, fresh); shared && !inSuccess(pos) {
					report(pos)
				}
			}
		case *ast.IncDecStmt:
			if pos, shared := sharedWriteTarget(pass.Info, n.X, fresh); shared && !inSuccess(pos) {
				report(pos)
			}
		case *ast.CallExpr:
			if isCASCall(pass.Info, n) {
				return
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !mutatorNames[sel.Sel.Name] {
				return
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok {
				return
			}
			path := typePkgPath(tv.Type)
			if path != "sync/atomic" && !strings.HasSuffix(path, "internal/sync4") {
				return
			}
			// Mutations of freshly allocated structures are initialization.
			if roots := identObjects(pass.Info, sel.X); anyIn(roots, fresh) {
				return
			}
			if !inSuccess(n.Pos()) {
				report(n.Pos())
			}
		}
	})
}

// mutatorNames are the construct/atomic methods that mutate shared state.
var mutatorNames = map[string]bool{
	"Store": true, "Add": true, "Inc": true, "Swap": true, "Set": true,
	"Put": true, "TryPut": true, "Push": true,
}

// successRegions computes the source spans that only execute after a CAS
// succeeded.
func successRegions(loop *ast.ForStmt, casCalls []*ast.CallExpr) []span {
	var out []span
	within := func(e ast.Expr, cas *ast.CallExpr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if n == ast.Node(cas) {
				found = true
			}
			return !found
		})
		return found
	}
	for _, cas := range casCalls {
		eachDirect(loop, func(n ast.Node) {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Cond == nil || !within(ifs.Cond, cas) {
				return
			}
			if u, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr); ok && u.Op == token.NOT {
				// if !cas { continue/return/break }: the rest of the loop
				// body after this statement is success-only.
				if exitsEarly(ifs.Body) {
					out = append(out, span{ifs.End(), loop.End()})
				}
				return
			}
			// if cas { success }
			out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
		})
	}
	return out
}

// exitsEarly reports whether a block unconditionally leaves the iteration.
func exitsEarly(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.ReturnStmt:
		return true
	}
	return false
}

// sharedWriteTarget classifies one assignment target: a write through a
// field of shared, non-fresh memory returns (pos, true).
func sharedWriteTarget(info *types.Info, lhs ast.Expr, fresh map[types.Object]bool) (token.Pos, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return token.NoPos, false
		}
		if roots := identObjects(info, e.X); anyIn(roots, fresh) {
			return token.NoPos, false
		}
		return e.Sel.Pos(), true
	case *ast.IndexExpr:
		if root, _ := rootObject(info, nil, e.X, 0); root != nil {
			if v, ok := root.(*types.Var); ok && v.IsField() && !fresh[root] {
				return e.Pos(), true
			}
		}
	case *ast.StarExpr:
		if root, _ := rootObject(info, nil, e.X, 0); root != nil {
			if fresh[root] {
				return token.NoPos, false
			}
			if v, ok := root.(*types.Var); ok && v.IsField() {
				return e.Pos(), true
			}
		}
	}
	return token.NoPos, false
}

// eachDirect visits the loop's condition, post statement, and body,
// skipping nested loops and function literals (their contents belong to
// those constructs).
func eachDirect(loop *ast.ForStmt, fn func(ast.Node)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if n != ast.Node(loop) {
				return false
			}
		}
		fn(n)
		return true
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
}

// assignedObjects collects every object assigned anywhere in the loop
// (including its init/post and nested statements).
func assignedObjects(info *types.Info, loop *ast.ForStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			record(n.Key)
			record(n.Value)
		}
		return true
	})
	return out
}

// freshLocals collects locals bound to a fresh allocation (&T{...},
// new(T), or a composite literal) — memory no other goroutine holds until
// it is published.
func freshLocals(info *types.Info, root ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isAllocExpr(as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isAllocExpr recognizes expressions that produce memory no other goroutine
// can hold yet.
func isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "new" || id.Name == "make") {
			return true
		}
	}
	return false
}

// isFreshExpr reports whether e evaluates to freshly allocated memory,
// possibly through a conversion or a fresh local.
func isFreshExpr(info *types.Info, e ast.Expr, fresh map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if isAllocExpr(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return fresh[obj]
		}
	case *ast.CallExpr:
		// Conversion wrapping (unsafe.Pointer(n)).
		if len(e.Args) == 1 {
			if _, isConv := info.Types[e.Fun]; isConv && info.Types[e.Fun].IsType() {
				return isFreshExpr(info, e.Args[0], fresh)
			}
		}
	}
	return false
}

// exprIsNil reports whether e is the predeclared nil.
func exprIsNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// containsLoadCall reports whether the expression re-reads shared state via
// a Load call each evaluation.
func containsLoadCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
				found = true
			}
		}
		return !found
	})
	return found
}

// identObjects collects every identifier object referenced in e.
func identObjects(info *types.Info, e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func anyIn(set, in map[types.Object]bool) bool {
	for k := range set {
		if in[k] {
			return true
		}
	}
	return false
}
