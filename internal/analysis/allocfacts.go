package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the alloc-site fact layer behind the zeroalloc analyzer: a
// per-function catalog of expressions that allocate (or that this analysis
// must assume allocate), plus the //sync4:zeroalloc annotation registry the
// runtime AllocsPerRun gate cross-checks.

// zeroAllocDirective marks a function whose whole static call tree must be
// allocation-free. It goes in the function's doc comment:
//
//	//sync4:zeroalloc
//	func (b *barrier) Wait() { ... }
const zeroAllocDirective = "//sync4:zeroalloc"

// ZeroAllocFunc is one annotated function, exported so the dynamic
// conformance gate (internal/allocgate) can enumerate the same annotations
// the static analyzer enforces.
type ZeroAllocFunc struct {
	FullName string // types.Func FullName, e.g. "(*repro/internal/trace.Recorder).Record"
	PkgPath  string
	Pos      token.Position
}

// ZeroAllocFuncs scans the packages' declarations for //sync4:zeroalloc
// annotations and returns them sorted by full name.
func ZeroAllocFuncs(pkgs []*Package) []ZeroAllocFunc {
	var out []ZeroAllocFunc
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasZeroAllocDirective(fd) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				out = append(out, ZeroAllocFunc{
					FullName: fn.FullName(),
					PkgPath:  pkg.Path,
					Pos:      pkg.Fset.Position(fd.Pos()),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName < out[j].FullName })
	return out
}

func hasZeroAllocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == zeroAllocDirective {
			return true
		}
	}
	return false
}

// allocSite is one expression the analysis treats as a heap allocation.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocPkgDeny lists standard-library packages whose every call is an
// allocation on a hot path (formatting, error construction, reflection-based
// encoding). Calls into them are flagged by package, not function.
var allocPkgDeny = map[string]bool{
	"fmt": true, "errors": true, "encoding/json": true, "log": true,
	"regexp": true, "reflect": true,
}

// allocFuncDeny lists individual standard-library functions that allocate,
// in packages that also export allocation-free calls.
var allocFuncDeny = map[string]map[string]bool{
	"sort": {"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"SliceIsSorted": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
		"Split": true, "SplitN": true, "SplitAfter": true, "Fields": true,
		"ToUpper": true, "ToLower": true, "Title": true, "Map": true, "Clone": true},
	"bytes": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
		"Split": true, "SplitN": true, "Fields": true, "Clone": true},
}

// allocCallSite classifies a resolved static call outside the module:
// allocating by policy, or assumed clean. strconv is special-cased so the
// Append* family (writes into a caller-owned buffer) stays usable on
// annotated paths while Itoa/Format*/Quote are flagged.
func allocCallSite(callee *types.Func) (string, bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return "", false
	}
	path, name := pkg.Path(), callee.Name()
	if allocPkgDeny[path] {
		return fmt.Sprintf("call to %s.%s allocates", path, name), true
	}
	if deny, ok := allocFuncDeny[path]; ok && deny[name] {
		return fmt.Sprintf("call to %s.%s allocates", path, name), true
	}
	if path == "strconv" && !strings.HasPrefix(name, "Append") {
		return fmt.Sprintf("call to strconv.%s allocates (use strconv.Append%s into a reused buffer)", name, name), true
	}
	return "", false
}

// nodeAllocSites computes (memoized per graph) the direct allocation sites
// of every function body. Sites inside nested literals belong to the
// literal's own node; creating a *capturing* literal is itself a site in the
// enclosing body.
func nodeAllocSites(g *CallGraph, n *CGNode) []allocSite {
	const memoKey = "alloc-sites"
	cache, ok := g.memo[memoKey].(map[*CGNode][]allocSite)
	if !ok {
		cache = make(map[*CGNode][]allocSite)
		g.memo[memoKey] = cache
	}
	if sites, ok := cache[n]; ok {
		return sites
	}
	sites := scanAllocSites(n)
	cache[n] = sites
	return sites
}

// scanAllocSites walks one body and records every allocating expression.
func scanAllocSites(n *CGNode) []allocSite {
	info := n.Pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	// First pass: find append calls whose result feeds back into the slice
	// they extend — `x = append(x, ...)`, or the strconv.Append* idiom of
	// `return append(buf, ...)` growing a buffer the caller owns. Amortized
	// growth of a caller-owned buffer is the one allocation shape zero-alloc
	// hot paths legitimately rely on (the AllocsPerRun gate's warm-up run
	// absorbs it), so these are exempt; any other append target is a fresh
	// slice.
	selfAppend := make(map[*ast.CallExpr]bool)
	markReturned := func(expr ast.Expr) {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			return
		}
		if root, _ := rootObject(info, n.assigns(), call.Args[0], 0); root != nil {
			selfAppend[call] = true
		}
	}
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			if len(nd.Lhs) != len(nd.Rhs) {
				return true
			}
			for i, rhs := range nd.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
					continue
				}
				lroot, _ := rootObject(info, n.assigns(), nd.Lhs[i], 0)
				aroot, _ := rootObject(info, n.assigns(), call.Args[0], 0)
				if lroot != nil && lroot == aroot {
					selfAppend[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				markReturned(res)
			}
		}
		return true
	})

	var walk func(nd ast.Node) bool
	walk = func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			if capturesLocals(n, nd) {
				add(nd.Pos(), "closure captures local variables (allocates)")
			}
			return false
		case *ast.GoStmt:
			add(nd.Pos(), "go statement allocates a goroutine")
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if cl, ok := ast.Unparen(nd.X).(*ast.CompositeLit); ok {
					add(cl.Pos(), "escaping composite literal &%s{...}", typeLabel(info, cl))
					// The literal's element expressions still need a walk.
					for _, el := range cl.Elts {
						ast.Inspect(el, walk)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[nd]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(nd.Pos(), "slice literal allocates")
				case *types.Map:
					add(nd.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if nd.Op == token.ADD {
				if tv, ok := info.Types[nd]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(nd.Pos(), "non-constant string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			sites = append(sites, callAllocSites(n, info, nd, selfAppend)...)
		}
		return true
	}
	ast.Inspect(n.Body(), walk)
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// callAllocSites classifies one call expression's allocation behavior.
func callAllocSites(n *CGNode, info *types.Info, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) []allocSite {
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		sites = append(sites, conversionAllocSites(info, call, tv.Type)...)
		return sites
	}

	switch {
	case isBuiltin(info, call, "make"):
		add(call.Pos(), "make allocates")
	case isBuiltin(info, call, "new"):
		add(call.Pos(), "new allocates")
	case isBuiltin(info, call, "append"):
		if !selfAppend[call] {
			add(call.Pos(), "append into a fresh slice allocates (grow the destination in place: x = append(x, ...))")
		}
	case isBuiltin(info, call, "panic"):
		if len(call.Args) == 1 {
			if s := ifaceConvSite(info, call.Args[0]); s != "" {
				add(call.Pos(), "panic with non-constant value allocates (%s)", s)
			}
		}
	default:
		callee := staticCallee(info, call)
		if callee == nil {
			return sites // dynamic call: opaque to the static check
		}
		if what, bad := allocCallSite(callee); bad {
			add(call.Pos(), "%s", what)
			return sites
		}
		// Implicit interface conversions at the call boundary: a concrete
		// non-pointer argument passed for an interface parameter boxes.
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return sites
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case i < params.Len():
				pt = params.At(i).Type()
			case sig.Variadic() && params.Len() > 0:
				pt = params.At(params.Len() - 1).Type()
				if sl, ok := pt.(*types.Slice); ok {
					pt = sl.Elem()
				}
			default:
				continue
			}
			if !types.IsInterface(pt) {
				continue
			}
			if s := ifaceConvSite(info, arg); s != "" {
				add(arg.Pos(), "passing %s boxes into interface parameter of %s", s, callee.Name())
			}
		}
	}
	return sites
}

// conversionAllocSites flags converting between strings and byte/rune
// slices, and explicit boxing conversions to interface types.
func conversionAllocSites(info *types.Info, call *ast.CallExpr, to types.Type) []allocSite {
	arg := call.Args[0]
	tvArg, ok := info.Types[arg]
	if !ok {
		return nil
	}
	var sites []allocSite
	toU, fromU := to.Underlying(), tvArg.Type.Underlying()
	toStr := isString(toU)
	fromStr := isString(fromU)
	_, toSlice := toU.(*types.Slice)
	_, fromSlice := fromU.(*types.Slice)
	switch {
	case toStr && fromSlice, toSlice && fromStr:
		if tvArg.Value == nil {
			sites = append(sites, allocSite{call.Pos(), "string/slice conversion copies and allocates"})
		}
	case types.IsInterface(toU):
		if s := ifaceConvSite(info, arg); s != "" {
			sites = append(sites, allocSite{call.Pos(), "explicit conversion boxes " + s})
		}
	}
	return sites
}

// ifaceConvSite describes the boxing cost of placing expr into an interface,
// or "" when the conversion is free: constants are compiler-materialized
// static data, pointers, interfaces, channels, maps and funcs box without
// copying into a fresh heap cell.
func ifaceConvSite(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok {
		return ""
	}
	if tv.Value != nil || tv.IsNil() {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return ""
	}
	return fmt.Sprintf("non-constant %s value", types.TypeString(tv.Type, types.RelativeTo(nil)))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// capturesLocals reports whether lit references variables declared in an
// enclosing function body — the captures that force the closure (and the
// captured cells) onto the heap. Package-level state is not a capture.
func capturesLocals(n *CGNode, lit *ast.FuncLit) bool {
	info := n.Pkg.Info
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared outside the literal but inside some function: a capture.
		if v.Pos() < lit.Pos() && !isPkgLevel(v) && v.Parent() != nil && v.Parent() != types.Universe {
			if enclosingFuncScope(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Parent() == v.Pkg().Scope()
}

// enclosingFuncScope reports whether v lives in some function's scope chain
// (i.e. it is a local or parameter, not package state).
func enclosingFuncScope(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}

// typeLabel renders a composite literal's type for a diagnostic.
func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if tv, ok := info.Types[cl]; ok {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return "T"
}
