package analysis

import (
	"fmt"
	"go/types"
	"sort"
)

// PlainAtomicMix flags struct fields that are accessed both through
// sync/atomic package functions and through plain loads/stores from code
// that can run concurrently — the classic "mostly atomic" bug where one
// overlooked plain access silently demotes every atomic on the field to a
// data race. It complements guarded-by: that analyzer infers lock
// discipline; this one enforces atomic discipline.
//
// Only raw integer fields (atomic.AddInt64(&s.f, ...) style) are checked:
// sync/atomic's typed values make plain access a compile error, which is the
// fix this analyzer recommends. A plain access is exempt when it is
// single-thread gated (`if tid == 0` spans from the parallel fixpoint), when
// the function is exempt in the parallel fixpoint (runs on one goroutine),
// when a lock is held at the access, or when it is not in concurrent code at
// all (constructors run before sharing).
var PlainAtomicMix = &Analyzer{
	Name: "plain-atomic-mix",
	Doc: "flag fields accessed both atomically and with plain loads/stores " +
		"outside guarded or single-thread spans",
	Family: FamilyPerformance,
	Run:    runPlainAtomicMix,
}

func runPlainAtomicMix(pass *Pass) {
	for _, d := range plainAtomicMixModule(pass.Graph) {
		if pass.Owns(d.pos) {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

func plainAtomicMixModule(g *CallGraph) []posMsg {
	const memoKey = "plainatomicmix-findings"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]posMsg)
	}
	accesses := collectAtomicAccesses(g)
	conc := concurrentNodes(g)
	pc := parallelContext(g)

	// Fields with at least one raw atomic access from concurrent code, and
	// the extents of all their atomic calls (a raw access like
	// atomic.AddInt64(&s.f, 1) contains a plain-looking &s.f the IR also
	// sees; those spans are excluded from the plain-access scan).
	rawFields := make(map[*types.Var][]span)
	for field, accs := range accesses {
		raw := false
		var spans []span
		for _, a := range accs {
			spans = append(spans, a.span)
			if a.raw && conc[a.node] {
				raw = true
			}
		}
		if raw {
			rawFields[field] = spans
		}
	}
	if len(rawFields) == 0 {
		g.memo[memoKey] = []posMsg(nil)
		return nil
	}

	var out []posMsg
	forEachNode(g, func(n *CGNode) {
		if !conc[n] {
			return
		}
		pi := pc.info[n]
		if pi != nil && pi.exempt {
			return
		}
		entry := lockset{}
		if pi != nil {
			entry = pi.entryLocks
		}
		ir := n.IR()
		ir.ForEachOpWithLockset(entry, func(op *Op, held lockset) {
			if op.Kind != OpRead && op.Kind != OpWrite {
				return
			}
			field, ok := op.Obj.(*types.Var)
			if !ok {
				return
			}
			spans, tracked := rawFields[field]
			if !tracked {
				return
			}
			for _, s := range spans {
				if s.contains(op.Pos) {
					return // the atomic call's own &s.f operand
				}
			}
			if len(held) > 0 {
				return // lock-guarded access: guarded-by's jurisdiction
			}
			if pi != nil && pi.posGated(op.Pos) {
				return // single-thread gated span
			}
			kind := "load"
			if op.Kind == OpWrite {
				kind = "store"
			}
			out = append(out, posMsg{pos: op.Pos, msg: fmt.Sprintf(
				"plain %s of field %s, which is accessed with sync/atomic "+
					"elsewhere; use atomic access everywhere or migrate the "+
					"field to a typed atomic (atomic.Int64 etc.)",
				kind, field.Name())})
		})
	})

	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	out = dedupePosMsg(out)
	g.memo[memoKey] = out
	return out
}

// dedupePosMsg drops duplicate findings at the same position (an access can
// be visited once per IR path).
func dedupePosMsg(in []posMsg) []posMsg {
	var out []posMsg
	for _, d := range in {
		if len(out) > 0 && out[len(out)-1].pos == d.pos && out[len(out)-1].msg == d.msg {
			continue
		}
		out = append(out, d)
	}
	return out
}
