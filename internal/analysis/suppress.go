package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment. The full syntax is
//
//	//lint:ignore sync4vet-<name>[,sync4vet-<name>...] reason
//
// mirroring staticcheck's directive shape so editors already highlight it.
// The reason is mandatory: a suppression without a justification does not
// suppress anything.
const ignorePrefix = "lint:ignore"

// analyzerPrefix namespaces this suite's checks inside lint:ignore
// directives.
const analyzerPrefix = "sync4vet-"

// suppressionSet records, per file and line, which analyzers are silenced.
type suppressionSet map[string]map[int][]string // filename -> line -> analyzer names

// covers reports whether d is silenced by a directive on its own line or on
// the line directly above.
func (s suppressionSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}

// suppressions scans every comment in files for well-formed lint:ignore
// directives.
func suppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	set := make(suppressionSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return set
}

// parseIgnore extracts the analyzer names from one comment, requiring the
// sync4vet- namespace and a non-empty reason.
func parseIgnore(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // need names + at least one word of reason
		return nil, false
	}
	var names []string
	for _, part := range strings.Split(fields[0], ",") {
		name, ok := strings.CutPrefix(part, analyzerPrefix)
		if !ok || name == "" {
			continue
		}
		names = append(names, name)
	}
	return names, len(names) > 0
}
