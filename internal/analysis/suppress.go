package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression comment. The full syntax is
//
//	//lint:ignore sync4vet-<name>[,sync4vet-<name>...] reason
//
// mirroring staticcheck's directive shape so editors already highlight it.
// The reason is mandatory: a suppression without a justification does not
// suppress anything.
const ignorePrefix = "lint:ignore"

// analyzerPrefix namespaces this suite's checks inside lint:ignore
// directives.
const analyzerPrefix = "sync4vet-"

// directive is one parsed lint:ignore comment. Usage is tracked per named
// analyzer so stale waivers surface as unused-suppression diagnostics.
type directive struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// suppressionSet records, per file and line, which directives apply.
type suppressionSet struct {
	byFile map[string]map[int][]*directive // filename -> line -> directives
	all    []*directive
}

// covers reports whether d is silenced by a directive on its own line or on
// the line directly above, marking the matching directive name as used.
func (s *suppressionSet) covers(d Diagnostic) bool {
	lines := s.byFile[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			for _, name := range dir.names {
				if name == d.Analyzer || name == "*" {
					dir.used[name] = true
					hit = true
				}
			}
		}
	}
	return hit
}

// unused returns one diagnostic per directive name that silenced nothing.
// Only names belonging to analyzers that actually ran are judged — a
// partial -run invocation must not condemn waivers for checks it skipped.
func (s *suppressionSet) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.all {
		var stale []string
		for _, name := range dir.names {
			if name == UnusedSuppression.Name {
				continue // suppressing the meta-check is judged by covers
			}
			if name != "*" && !ran[name] {
				continue
			}
			if !dir.used[name] {
				stale = append(stale, analyzerPrefix+name)
			}
		}
		if len(stale) == 0 {
			continue
		}
		sort.Strings(stale)
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: UnusedSuppression.Name,
			Message: fmt.Sprintf("suppression %s silences nothing on this or the next line; delete the stale waiver",
				strings.Join(stale, ",")),
		})
	}
	return out
}

// suppressions scans every comment in files for well-formed lint:ignore
// directives.
func suppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byFile: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := &directive{pos: pos, names: names, used: make(map[string]bool)}
				set.all = append(set.all, dir)
				lines := set.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					set.byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
			}
		}
	}
	return set
}

// parseIgnore extracts the analyzer names from one comment, requiring the
// sync4vet- namespace and a non-empty reason.
func parseIgnore(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // need names + at least one word of reason
		return nil, false
	}
	var names []string
	for _, part := range strings.Split(fields[0], ",") {
		name, ok := strings.CutPrefix(part, analyzerPrefix)
		if !ok || name == "" {
			continue
		}
		names = append(names, name)
	}
	return names, len(names) > 0
}
