package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture comment of the form
//
//	// want <analyzer> "substring of the message"
type want struct {
	file     string // basename
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantRE = regexp.MustCompile(`// want ([a-z-]+) "([^"]*)"`)

// parseWants scans every fixture file in dir for want comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &want{file: e.Name(), line: line, analyzer: m[1], substr: m[2]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// loadFixture type-checks one fixture directory under the given import
// path. The path matters: kit-bypass only fires inside workload packages.
func loadFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	if pkg == nil {
		t.Fatalf("load %s: no Go files", fixture)
	}
	return pkg
}

// checkFixture runs every analyzer over the fixture and requires an exact
// match between diagnostics and want comments: every want satisfied, no
// diagnostic unaccounted for.
func checkFixture(t *testing.T, fixture, pkgPath string, wantSuppressed int) {
	t.Helper()
	pkg := loadFixture(t, fixture, pkgPath)
	diags, suppressed := RunAnalyzers([]*Package{pkg}, Analyzers())
	wants := parseWants(t, pkg.Dir)

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
	if suppressed != wantSuppressed {
		t.Errorf("suppressed %d diagnostics, want %d", suppressed, wantSuppressed)
	}
}

func TestFixtures(t *testing.T) {
	// Bad fixtures carry want comments at every flagged position; good
	// fixtures carry none and must stay silent under all five analyzers.
	cases := []struct {
		fixture    string
		pkgPath    string
		suppressed int
	}{
		{"kitbypass/bad", "repro/internal/workloads/kbfixbad", 0},
		{"kitbypass/good", "repro/internal/workloads/kbfixgood", 0},
		{"kitbypass/traced", "repro/internal/workloads/tracedfix", 2},
		{"constructcopy/bad", "repro/internal/analysis/ccfixbad", 0},
		{"constructcopy/good", "repro/internal/analysis/ccfixgood", 0},
		{"barriermismatch/bad", "repro/internal/analysis/bmfixbad", 0},
		{"barriermismatch/good", "repro/internal/analysis/bmfixgood", 0},
		{"nakedspin/bad", "repro/internal/analysis/nsfixbad", 0},
		{"nakedspin/good", "repro/internal/analysis/nsfixgood", 0},
		{"errchecklite/bad", "repro/internal/analysis/ecfixbad", 0},
		{"errchecklite/good", "repro/internal/analysis/ecfixgood", 0},
		{"suppress", "repro/internal/analysis/supfix", 2},
		{"guardedby/bad", "repro/internal/workloads/gbfixbad", 0},
		{"guardedby/good", "repro/internal/workloads/gbfixgood", 0},
		{"guardedby/suppressed", "repro/internal/workloads/gbfixsup", 1},
		{"barrierorder/bad", "repro/internal/workloads/bofixbad", 0},
		{"barrierorder/good", "repro/internal/workloads/bofixgood", 0},
		{"barrierorder/suppressed", "repro/internal/workloads/bofixsup", 1},
		{"casshape/bad", "repro/internal/analysis/csfixbad", 0},
		{"casshape/good", "repro/internal/analysis/csfixgood", 0},
		{"casshape/suppressed", "repro/internal/analysis/csfixsup", 1},
		// The unused-suppression fixture silences one naked-spin finding and
		// one of its own findings (the migration waiver), so two
		// suppressions survive alongside the single flagged stale directive.
		{"unusedsup", "repro/internal/analysis/usfix", 2},
		{"callgraph/generics", "repro/internal/analysis/cgfixgen", 0},
		// The splash4d admission-queue shape, pinned under a workload path
		// so kit-bypass is armed: the clean pipeline must stay silent, and
		// the metrics gauge's raw atomic needs exactly one justified
		// suppression.
		{"serverqueue/clean", "repro/internal/workloads/serverqueuefix", 0},
		{"serverqueue/suppressed", "repro/internal/workloads/serverqueuegauge", 1},
		// The fault-injection decorator's shapes, pinned under a workload
		// path: the perturbation/flap/spurious-wake patterns must stay
		// silent, and the injector's raw per-site schedule counter needs
		// exactly one justified suppression.
		{"faulty/clean", "repro/internal/workloads/faultyfix", 0},
		{"faulty/suppressed", "repro/internal/workloads/faultyfixsup", 1},
		// Perf-pass fixtures: the suppressed zeroalloc fixture carries one
		// justified waiver plus one stale waiver the meta-check must flag.
		{"zeroalloc/bad", "repro/internal/analysis/zafixbad", 0},
		{"zeroalloc/good", "repro/internal/analysis/zafixgood", 0},
		{"zeroalloc/suppressed", "repro/internal/analysis/zafixsup", 1},
		{"atomiclayout/bad", "repro/internal/analysis/alfixbad", 0},
		{"atomiclayout/good", "repro/internal/analysis/alfixgood", 0},
		{"atomiclayout/suppressed", "repro/internal/analysis/alfixsup", 1},
		{"plainatomicmix/bad", "repro/internal/analysis/pmfixbad", 0},
		{"plainatomicmix/good", "repro/internal/analysis/pmfixgood", 0},
		{"plainatomicmix/suppressed", "repro/internal/analysis/pmfixsup", 1},
		// Conformance fixtures: the bad coverage fixture fails the proof
		// three ways (no carrier, undriven carrier, one-kit drive), the
		// untagged fixture sits under a spec-scoped sync4 path so the
		// keyword police are armed, and the stale fixture collects every
		// tag corruption the generator refuses to render.
		{"reqcoverage/bad", "repro/internal/analysis/rcfixbad", 0},
		{"reqcoverage/good", "repro/internal/analysis/rcfixgood", 0},
		{"reqcoverage/suppressed", "repro/internal/analysis/rcfixsup", 1},
		{"requntagged/bad", "repro/internal/sync4/rufixbad", 0},
		{"requntagged/good", "repro/internal/sync4/rufixgood", 0},
		{"reqstale/bad", "repro/internal/analysis/rsfixbad", 0},
		{"reqstale/good", "repro/internal/analysis/rsfixgood", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.ReplaceAll(tc.fixture, "/", "_"), func(t *testing.T) {
			t.Parallel()
			checkFixture(t, tc.fixture, tc.pkgPath, tc.suppressed)
		})
	}
}

// TestKitBypassScopedToWorkloads loads the kit-bypass bad fixture under a
// non-workload import path: raw sync use is legal outside the workloads, so
// the analyzer must stay silent.
func TestKitBypassScopedToWorkloads(t *testing.T) {
	pkg := loadFixture(t, "kitbypass/bad", "repro/internal/analysis/kbfixelsewhere")
	diags, _ := RunAnalyzers([]*Package{pkg}, []*Analyzer{KitBypass})
	for _, d := range diags {
		t.Errorf("kit-bypass fired outside internal/workloads: %s", d)
	}
}

// TestModuleIsClean is the tier-1 driver: the full analyzer suite over the
// whole module must report nothing. A finding here is either a real
// concurrency bug (fix it) or a deliberate exception (suppress it with a
// justified //lint:ignore).
func TestModuleIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("module walk found only %d packages; loader lost coverage", len(pkgs))
	}
	diags, _ := RunAnalyzers(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestBadFixtureFailsWholeSuite mirrors the CLI contract: pointing the
// analyzer suite at a fixture with violations must produce diagnostics (the
// CLI turns that into a non-zero exit).
func TestBadFixtureFailsWholeSuite(t *testing.T) {
	pkg := loadFixture(t, "nakedspin/bad", "repro/internal/analysis/nsfixbad2")
	diags, _ := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) == 0 {
		t.Fatal("bad fixture produced no diagnostics; the CLI gate would pass broken code")
	}
}
