package analysis

// ReqUntagged flags normative RFC2119 language on the spec surface (the
// sync4 kit layer and the splash4d server) that carries no requirement ID.
// An uppercase MUST in a doc comment reads like a promise, but without a
// //sync4:req tag it cannot be cited, covered, or certified against — it is
// a requirement that exists only until the comment is next edited.
var ReqUntagged = &Analyzer{
	Name:   "req-untagged",
	Doc:    "flag RFC2119 keywords in sync4/server doc comments that carry no requirement ID",
	Family: FamilyConformance,
	Run:    runReqUntagged,
}

func runReqUntagged(p *Pass) {
	for _, d := range reqFactsOf(p.Graph).untagged {
		if p.Owns(d.pos) {
			p.Reportf(d.pos, "%s", d.msg)
		}
	}
}
