package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the requirement fact layer behind the conformance pass
// (req-coverage, req-untagged, req-stale) and the generated conformance
// document (conformance.go). The sync4 kit contract is written down as
// RFC2119-keyword requirements tagged in doc comments:
//
//	//sync4:req SYNC4-QUEUE-104 v1 MUST hand back every accepted element.
//	func testQueueCapacityOne(t *testing.T, kit sync4.Kit) { ... }
//
// declares requirement SYNC4-QUEUE-104 (area QUEUE), present since spec
// version v1, at MUST level. A declaration may sit on a package-level
// function, an interface method, or a named type. A conformance test claims
// to exercise requirements it does not itself declare with
//
//	//sync4:covers SYNC4-QUEUE-104 SYNC4-QUEUE-105
//
// A declaration attached to a test-shaped function (one taking *testing.T)
// covers itself. Coverage is then proved statically: a MUST-level
// requirement must have at least one covering function reachable — through
// the module call graph plus a syntactic overlay of the module's _test.go
// files — from a Test* driver; kit-parametric suites must be driven under
// both the classic and the lockfree kit.

const (
	reqDirective    = "//sync4:req"
	coversDirective = "//sync4:covers"
)

// reqIDPattern is the requirement ID grammar: SYNC4-<AREA>-<NNN>.
var reqIDPattern = regexp.MustCompile(`^SYNC4-([A-Z]+)-([0-9]{3})$`)

// rfc2119Keywords are the normative levels a requirement may declare,
// longest-match first so "MUST NOT" is not parsed as "MUST" + text.
var rfc2119Keywords = []string{"MUST NOT", "MUST", "SHOULD NOT", "SHOULD", "MAY"}

// rfc2119Scan matches normative keywords in prose for the req-untagged
// analyzer. SHALL is matched too: it is normative language this spec does
// not use, so its appearance is always untracked.
var rfc2119Scan = regexp.MustCompile(`\b(MUST NOT|MUST|SHALL NOT|SHALL|SHOULD NOT|SHOULD|MAY)\b`)

// Requirement is one declared conformance requirement.
type Requirement struct {
	ID      string // SYNC4-<AREA>-<NNN>
	Area    string // middle ID segment, the grouping key of the document
	Since   int    // spec version the requirement first appeared in
	Keyword string // RFC2119 level: MUST, MUST NOT, SHOULD, SHOULD NOT, MAY
	Text    string // the requirement sentence, keyword excluded
	Decl    string // display name of the tagged declaration

	pos  token.Pos
	fn   *types.Func  // tagged function or interface method; nil otherwise
	test *overlayFunc // tagged _test.go function; nil otherwise
}

// coversTag is one //sync4:covers directive: the carrying function claims to
// exercise the named requirements.
type coversTag struct {
	ids  []string
	pos  token.Pos
	fn   *types.Func
	test *overlayFunc
}

// reqFacts is the module-wide requirement database, built once per call
// graph and shared by the three conformance analyzers and the document
// generator.
type reqFacts struct {
	overlay *testOverlay
	reqs    []*Requirement // sorted by ID
	byID    map[string]*Requirement
	covers  []*coversTag
	version int // resolved spec version (kittest.SpecVersion, default 1)

	stale    []posMsg // malformed tags, duplicates, dangling refs, drift
	untagged []posMsg // normative keywords outside any tagged doc comment

	seen map[token.Pos]bool // directive comments consumed by a doc attachment
}

// reqFactsOf builds (or returns the memoized) requirement facts for g.
func reqFactsOf(g *CallGraph) *reqFacts {
	const memoKey = "req-facts"
	if v, ok := g.memo[memoKey]; ok {
		return v.(*reqFacts)
	}
	f := &reqFacts{byID: make(map[string]*Requirement), overlay: overlayOf(g)}
	f.version = specVersionOf(g.Pkgs)

	// Pass 1: collect declarations and covers tags from every doc comment
	// attachment point, non-test sources first, then the test overlay.
	for _, pkg := range g.Pkgs {
		for _, file := range pkg.Files {
			f.scanFile(pkg, file)
		}
	}
	for _, of := range f.overlay.funcs {
		f.scanOverlayFunc(of)
	}
	for _, dirFiles := range f.overlay.files {
		for _, file := range dirFiles {
			f.scanLooseDirectives(file)
		}
	}
	for _, pkg := range g.Pkgs {
		for _, file := range pkg.Files {
			f.scanLooseDirectives(file)
		}
	}

	sort.Slice(f.reqs, func(i, j int) bool { return f.reqs[i].ID < f.reqs[j].ID })

	// Pass 2: referential integrity — every covers target must exist.
	for _, c := range f.covers {
		for _, id := range c.ids {
			if f.byID[id] == nil {
				f.stale = append(f.stale, posMsg{c.pos, fmt.Sprintf(
					"covers tag references %s, which no //sync4:req declares (stale reference or typo)", id)})
			}
		}
	}
	g.memo[memoKey] = f
	return f
}

// scanFile collects requirement and covers tags from one non-test file's doc
// comments: package-level functions, named types, and interface methods.
func (f *reqFacts) scanFile(pkg *Package, file *ast.File) {
	f.scanDocGroup(pkg, file.Doc, attachment{declName: "package " + pkg.Types.Name()})
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			at := attachment{declName: pkg.Types.Name() + "." + d.Name.Name}
			if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
				at.fn = fn
			}
			f.scanDocGroup(pkg, d.Doc, at)
		case *ast.GenDecl:
			f.scanDocGroup(pkg, d.Doc, attachment{declName: pkg.Types.Name() + " declaration"})
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				f.scanDocGroup(pkg, ts.Doc, attachment{declName: pkg.Types.Name() + "." + ts.Name.Name})
				iface, ok := ts.Type.(*ast.InterfaceType)
				if !ok || iface.Methods == nil {
					continue
				}
				for _, m := range iface.Methods.List {
					if len(m.Names) == 0 {
						continue // embedded interface
					}
					at := attachment{declName: pkg.Types.Name() + "." + ts.Name.Name + "." + m.Names[0].Name}
					if fn, ok := pkg.Info.Defs[m.Names[0]].(*types.Func); ok {
						at.fn = fn
					}
					f.scanDocGroup(pkg, m.Doc, at)
				}
			}
		}
	}
}

// scanOverlayFunc collects tags from one _test.go function's doc comment.
func (f *reqFacts) scanOverlayFunc(of *overlayFunc) {
	if of.pkg == nil {
		return
	}
	f.scanDocGroup(of.pkg, of.decl.Doc, attachment{
		declName: of.pkgName + "." + of.name,
		test:     of,
	})
}

// attachment names the declaration a doc comment belongs to.
type attachment struct {
	declName string
	fn       *types.Func
	test     *overlayFunc
}

// scanDocGroup parses one doc comment group: requirement declarations,
// covers tags, and — when the group carries neither and the package is part
// of the spec surface — untracked normative keywords.
func (f *reqFacts) scanDocGroup(pkg *Package, doc *ast.CommentGroup, at attachment) {
	if doc == nil {
		return
	}
	tagged := false
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case strings.HasPrefix(text, reqDirective):
			tagged = true
			f.markSeen(c.Pos())
			f.parseReq(c, text, at)
		case strings.HasPrefix(text, coversDirective):
			tagged = true
			f.markSeen(c.Pos())
			f.parseCovers(c, text, at)
		}
	}
	if tagged || !specScoped(pkg.Path) {
		return
	}
	// Untagged doc comment on the spec surface: normative keywords here are
	// requirements nobody can cite, cover, or certify against.
	for _, c := range doc.List {
		if loc := rfc2119Scan.FindStringIndex(c.Text); loc != nil {
			kw := c.Text[loc[0]:loc[1]]
			f.untagged = append(f.untagged, posMsg{c.Pos() + token.Pos(loc[0]), fmt.Sprintf(
				"normative %q in the doc comment of %s carries no requirement ID; declare it with %s SYNC4-<AREA>-<NNN> v<N> %s ... or demote it to lowercase prose",
				kw, at.declName, reqDirective, kw)})
			return // one finding per doc comment is enough
		}
	}
}

func (f *reqFacts) markSeen(pos token.Pos) {
	if f.seen == nil {
		f.seen = make(map[token.Pos]bool)
	}
	f.seen[pos] = true
}

// stripTrailingComment cuts a trailing "// ..." comment from a directive's
// payload, so margin notes (and the fixtures' want-annotations) never leak
// into requirement text or covers lists.
func stripTrailingComment(s string) string {
	if i := strings.Index(s, " //"); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	return s
}

// parseReq validates and records one //sync4:req directive.
func (f *reqFacts) parseReq(c *ast.Comment, text string, at attachment) {
	rest := stripTrailingComment(strings.TrimSpace(strings.TrimPrefix(text, reqDirective)))
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"malformed %s directive: want %s SYNC4-<AREA>-<NNN> v<N> <RFC2119-KEYWORD> <sentence>", reqDirective, reqDirective)})
		return
	}
	id := fields[0]
	m := reqIDPattern.FindStringSubmatch(id)
	if m == nil {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"requirement ID %q does not match SYNC4-<AREA>-<NNN> (uppercase area, three digits)", id)})
		return
	}
	since, ok := parseSince(fields[1])
	if !ok {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"requirement %s: since-version %q is not of the form v<N> with N >= 1", id, fields[1])})
		return
	}
	if since > f.version {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"requirement %s declares since v%d but the conformance document is at v%d; bump kittest.SpecVersion before publishing new requirements", id, since, f.version)})
		return
	}
	sentence := strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	sentence = strings.TrimSpace(strings.TrimPrefix(sentence, fields[1]))
	keyword := ""
	for _, kw := range rfc2119Keywords {
		if sentence == kw || strings.HasPrefix(sentence, kw+" ") {
			keyword = kw
			break
		}
	}
	if keyword == "" {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"requirement %s: sentence must open with an RFC2119 keyword (%s)", id, strings.Join(rfc2119Keywords, ", "))})
		return
	}
	body := strings.TrimSpace(strings.TrimPrefix(sentence, keyword))
	if body == "" {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"requirement %s: the %s keyword needs a requirement sentence after it", id, keyword)})
		return
	}
	if prev := f.byID[id]; prev != nil {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"duplicate declaration of %s (first declared on %s); requirement IDs are unique module-wide", id, prev.Decl)})
		return
	}
	req := &Requirement{
		ID: id, Area: m[1], Since: since, Keyword: keyword, Text: body,
		Decl: at.declName, pos: c.Pos(), fn: at.fn, test: at.test,
	}
	f.byID[id] = req
	f.reqs = append(f.reqs, req)
}

// parseCovers validates and records one //sync4:covers directive.
func (f *reqFacts) parseCovers(c *ast.Comment, text string, at attachment) {
	rest := stripTrailingComment(strings.TrimSpace(strings.TrimPrefix(text, coversDirective)))
	var ids []string
	for _, part := range strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' }) {
		if !reqIDPattern.MatchString(part) {
			f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
				"covers tag names %q, which does not match SYNC4-<AREA>-<NNN>", part)})
			continue
		}
		ids = append(ids, part)
	}
	if len(ids) == 0 {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"empty %s directive: name at least one requirement ID", coversDirective)})
		return
	}
	if at.fn == nil && at.test == nil {
		f.stale = append(f.stale, posMsg{c.Pos(),
			"covers tag must be attached to a function's doc comment (a conformance test or suite body)"})
		return
	}
	if at.fn != nil && at.test == nil && !isConformanceFunc(at.fn) {
		f.stale = append(f.stale, posMsg{c.Pos(), fmt.Sprintf(
			"covers tag on %s, which is not a conformance test (no *testing.T parameter); coverage claims belong on the test that exercises the requirement", at.declName)})
		return
	}
	f.covers = append(f.covers, &coversTag{ids: ids, pos: c.Pos(), fn: at.fn, test: at.test})
}

// scanLooseDirectives flags sync4:req / sync4:covers comments that no doc
// comment attachment consumed: a tag floating in a function body or between
// declarations silently drops out of the spec, so it is an error.
func (f *reqFacts) scanLooseDirectives(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, reqDirective) && !strings.HasPrefix(text, coversDirective) {
				continue
			}
			if f.seen[c.Pos()] {
				continue
			}
			f.stale = append(f.stale, posMsg{c.Pos(),
				"requirement tag is not attached to a declaration's doc comment, so it is invisible to the conformance document; move it onto the function, method, or type it specifies"})
		}
	}
}

func parseSince(s string) (int, bool) {
	rest, ok := strings.CutPrefix(s, "v")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// specScoped reports whether a package path belongs to the spec surface the
// req-untagged analyzer polices: the sync4 kit layer, the splash4d server,
// and the cluster layer, whose doc comments are where the contract lives.
func specScoped(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/sync4") ||
		strings.Contains(pkgPath, "internal/server") ||
		strings.Contains(pkgPath, "internal/cluster")
}

// specVersionOf resolves the current conformance document version: the
// integer constant SpecVersion in a package named kittest, or in any
// analyzed package as a fallback (fixtures declare their own), defaulting
// to 1.
func specVersionOf(pkgs []*Package) int {
	fallback := 0
	for _, pkg := range pkgs {
		obj := pkg.Types.Scope().Lookup("SpecVersion")
		cn, ok := obj.(*types.Const)
		if !ok {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(cn.Val()))
		if !ok || v < 1 {
			continue
		}
		if pkg.Types.Name() == "kittest" {
			return int(v)
		}
		if fallback == 0 {
			fallback = int(v)
		}
	}
	if fallback == 0 {
		return 1
	}
	return fallback
}

// isConformanceFunc reports whether fn is test-shaped: some parameter is
// *testing.T. The kittest suite bodies and the registry entries all have
// this shape.
func isConformanceFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isTestingT(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isTestingT(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "T" && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// isKitParam reports whether fn takes a sync4.Kit parameter — the mark of a
// kit-parametric conformance suite, which must be driven under both kits.
func isKitParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Kit" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sync4") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Test-file overlay
//
// The loader deliberately analyzes non-test sources only — _test.go files
// host the harnesses and may use raw sync. But conformance coverage is
// *about* tests, so the overlay parses every _test.go file of the analyzed
// directories (syntax only, no type checking) and extracts the facts the
// coverage proof needs: which Test* functions exist, which functions they
// call, and which kits they mention.

// overlayFunc is one function declared in a _test.go file.
type overlayFunc struct {
	name    string
	pkgName string // package clause of the test file (e.g. "server", "sync4_test")
	dir     string
	decl    *ast.FuncDecl
	pkg     *Package // the analyzed package sharing the directory
	isTest  bool     // Test* with a *testing.T parameter

	calls    map[string]bool // "pkgident.Name" for selector calls, "Name" for bare calls
	mentions map[string]bool // kit package identifiers referenced: classic, lockfree
}

// testOverlay is the module's parsed _test.go surface.
type testOverlay struct {
	files map[string][]*ast.File // dir -> parsed test files
	funcs []*overlayFunc
	byDir map[string]map[string]*overlayFunc
}

// filesForDir returns the parsed test files of one package directory.
func (ov *testOverlay) filesForDir(dir string) []*ast.File {
	return ov.files[dir]
}

// overlayOf parses (memoized) the _test.go files alongside every analyzed
// package. Files are parsed into the graph's shared FileSet and registered
// as owned by the package sharing their directory, so diagnostics reported
// at overlay positions are claimed — and suppressible — like any other.
func overlayOf(g *CallGraph) *testOverlay {
	const memoKey = "req-overlay"
	if v, ok := g.memo[memoKey]; ok {
		return v.(*testOverlay)
	}
	ov := &testOverlay{
		files: make(map[string][]*ast.File),
		byDir: make(map[string]map[string]*overlayFunc),
	}
	for _, pkg := range g.Pkgs {
		if _, done := ov.files[pkg.Dir]; done {
			continue
		}
		ov.files[pkg.Dir] = nil
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
				continue
			}
			if match, err := build.Default.MatchFile(pkg.Dir, name); err != nil || !match {
				continue
			}
			path := filepath.Join(pkg.Dir, name)
			file, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
			if err != nil {
				continue // unparseable fixtures are simply not part of the overlay
			}
			ov.files[pkg.Dir] = append(ov.files[pkg.Dir], file)
			g.fileOwner[path] = pkg
			ov.scanTestFile(pkg, file)
		}
	}
	sort.Slice(ov.funcs, func(i, j int) bool {
		if ov.funcs[i].dir != ov.funcs[j].dir {
			return ov.funcs[i].dir < ov.funcs[j].dir
		}
		return ov.funcs[i].name < ov.funcs[j].name
	})
	g.memo[memoKey] = ov
	return ov
}

// scanTestFile extracts the overlay facts of one parsed _test.go file.
func (ov *testOverlay) scanTestFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Recv != nil {
			continue
		}
		of := &overlayFunc{
			name:     fd.Name.Name,
			pkgName:  file.Name.Name,
			dir:      pkg.Dir,
			decl:     fd,
			pkg:      pkg,
			calls:    make(map[string]bool),
			mentions: make(map[string]bool),
		}
		of.isTest = strings.HasPrefix(of.name, "Test") && of.name != "TestMain" && hasTestingTParam(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					of.calls[fun.Name] = true
				case *ast.SelectorExpr:
					if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
						of.calls[x.Name+"."+fun.Sel.Name] = true
					}
				}
			case *ast.SelectorExpr:
				if x, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if x.Name == "classic" || x.Name == "lockfree" {
						of.mentions[x.Name] = true
					}
				}
			}
			return true
		})
		ov.funcs = append(ov.funcs, of)
		byName := ov.byDir[pkg.Dir]
		if byName == nil {
			byName = make(map[string]*overlayFunc)
			ov.byDir[pkg.Dir] = byName
		}
		byName[of.name] = of
	}
}

// hasTestingTParam checks, syntactically, for a *testing.T parameter.
func hasTestingTParam(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		star, ok := p.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); ok && x.Name == "testing" && sel.Sel.Name == "T" {
			return true
		}
	}
	return false
}

// closure returns the overlay functions reachable from of via bare-name
// calls within the same directory, including of itself.
func (ov *testOverlay) closure(of *overlayFunc) map[*overlayFunc]bool {
	seen := map[*overlayFunc]bool{of: true}
	work := []*overlayFunc{of}
	byName := ov.byDir[of.dir]
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for call := range cur.calls {
			if strings.Contains(call, ".") {
				continue
			}
			if next, ok := byName[call]; ok && !seen[next] {
				seen[next] = true
				work = append(work, next)
			}
		}
	}
	return seen
}

// ---------------------------------------------------------------------------
// Drivers and coverage

// reqDriver is one Test* function together with everything it can execute:
// the typed entry functions it calls into analyzed code, the overlay
// functions it reaches within its own directory, and the kits it mentions.
type reqDriver struct {
	test    *overlayFunc
	name    string // display name, e.g. "sync4_test.TestFaultConformanceClassic"
	kits    map[string]bool
	entries []*types.Func
	reach   map[*overlayFunc]bool
}

// drives reports whether the driver executes the typed function fn.
func (d *reqDriver) drives(g *CallGraph, fn *types.Func) bool {
	for _, e := range d.entries {
		if e == fn || reachableFrom(g, e)[fn] {
			return true
		}
	}
	return false
}

// reqDrivers computes (memoized) every Test* driver in the overlay.
func reqDrivers(g *CallGraph) []*reqDriver {
	const memoKey = "req-drivers"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]*reqDriver)
	}
	ov := overlayOf(g)

	// Index analyzed packages by package name (for qualified calls) and by
	// directory (for bare calls from in-package test files).
	byName := make(map[string][]*Package)
	byDir := make(map[string]*Package)
	for _, pkg := range g.Pkgs {
		byName[pkg.Types.Name()] = append(byName[pkg.Types.Name()], pkg)
		byDir[pkg.Dir] = pkg
	}

	var drivers []*reqDriver
	for _, of := range ov.funcs {
		if !of.isTest {
			continue
		}
		d := &reqDriver{
			test:  of,
			name:  of.pkgName + "." + of.name,
			kits:  make(map[string]bool),
			reach: ov.closure(of),
		}
		entrySeen := make(map[*types.Func]bool)
		addEntry := func(fn *types.Func) {
			if fn != nil && !entrySeen[fn] {
				entrySeen[fn] = true
				d.entries = append(d.entries, fn)
			}
		}
		for member := range d.reach {
			for k := range member.mentions {
				d.kits[k] = true
			}
			for call := range member.calls {
				if pkgIdent, fnName, ok := strings.Cut(call, "."); ok {
					for _, pkg := range byName[pkgIdent] {
						addEntry(lookupFunc(pkg, fnName))
					}
					continue
				}
				if pkg := byDir[member.dir]; pkg != nil {
					addEntry(lookupFunc(pkg, call))
				}
			}
		}
		sort.Slice(d.entries, func(i, j int) bool { return d.entries[i].FullName() < d.entries[j].FullName() })
		drivers = append(drivers, d)
	}
	g.memo[memoKey] = drivers
	return drivers
}

// lookupFunc resolves a package-level function by name.
func lookupFunc(pkg *Package, name string) *types.Func {
	fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	return fn
}

// reachableFrom computes (memoized) the set of functions whose bodies may
// execute when fn runs, following static call edges and descending into
// function literals. Dynamic dispatch produces no edge — the usual
// trade: coverage derived from resolvable calls only.
func reachableFrom(g *CallGraph, fn *types.Func) map[*types.Func]bool {
	const memoKey = "req-reach"
	cache, ok := g.memo[memoKey].(map[*types.Func]map[*types.Func]bool)
	if !ok {
		cache = make(map[*types.Func]map[*types.Func]bool)
		g.memo[memoKey] = cache
	}
	if r, ok := cache[fn]; ok {
		return r
	}
	out := make(map[*types.Func]bool)
	visited := make(map[*CGNode]bool)
	var visit func(n *CGNode)
	visit = func(n *CGNode) {
		if n == nil || visited[n] {
			return
		}
		visited[n] = true
		for _, cs := range n.Calls {
			if cs.Callee == nil {
				continue
			}
			if !out[cs.Callee] {
				out[cs.Callee] = true
				visit(g.Nodes[cs.Callee])
			}
		}
		for _, lit := range n.Lits {
			visit(lit)
		}
	}
	if n := g.Nodes[fn]; n != nil {
		out[fn] = true
		visit(n)
	}
	cache[fn] = out
	return out
}

// covMember is one function claiming to exercise a requirement, with the
// drivers proven to execute it.
type covMember struct {
	display  string
	kitParam bool
	drivers  []*reqDriver // sorted by name
}

// covInfo is one requirement's full coverage picture.
type covInfo struct {
	req     *Requirement
	members []*covMember // sorted by display name
}

// reqCoverageOf computes (memoized) the coverage picture of every declared
// requirement.
func reqCoverageOf(g *CallGraph) []*covInfo {
	const memoKey = "req-coverage-facts"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]*covInfo)
	}
	f := reqFactsOf(g)
	drivers := reqDrivers(g)

	// Collect covering candidates per requirement: the declaration itself
	// when test-shaped, plus every covers tag naming it.
	type carrier struct {
		fn   *types.Func
		test *overlayFunc
	}
	carriers := make(map[string][]carrier)
	addCarrier := func(id string, c carrier) {
		for _, prev := range carriers[id] {
			if prev.fn == c.fn && prev.test == c.test {
				return
			}
		}
		carriers[id] = append(carriers[id], c)
	}
	for _, req := range f.reqs {
		if req.test != nil || (req.fn != nil && isConformanceFunc(req.fn)) {
			addCarrier(req.ID, carrier{fn: req.fn, test: req.test})
		}
	}
	for _, c := range f.covers {
		for _, id := range c.ids {
			if f.byID[id] != nil {
				addCarrier(id, carrier{fn: c.fn, test: c.test})
			}
		}
	}

	var out []*covInfo
	for _, req := range f.reqs {
		ci := &covInfo{req: req}
		for _, c := range carriers[req.ID] {
			m := &covMember{}
			switch {
			case c.test != nil:
				m.display = c.test.pkgName + "." + c.test.name
				for _, d := range drivers {
					if d.test == c.test || d.reach[c.test] {
						m.drivers = append(m.drivers, d)
					}
				}
			case c.fn != nil:
				m.display = c.fn.Pkg().Name() + "." + c.fn.Name()
				m.kitParam = isKitParam(c.fn)
				for _, d := range drivers {
					if d.drives(g, c.fn) {
						m.drivers = append(m.drivers, d)
					}
				}
			}
			sort.Slice(m.drivers, func(i, j int) bool { return m.drivers[i].name < m.drivers[j].name })
			ci.members = append(ci.members, m)
		}
		sort.Slice(ci.members, func(i, j int) bool { return ci.members[i].display < ci.members[j].display })
		out = append(out, ci)
	}
	g.memo[memoKey] = out
	return out
}
