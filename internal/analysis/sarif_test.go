package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// sarifShape mirrors the minimal SARIF 2.1.0 subset consumers rely on; the
// golden test unmarshals the emitted log into it and checks every required
// property is populated.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
					FullDescription struct {
						Text string `json:"text"`
					} `json:"fullDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFOutput(t *testing.T) {
	pkg := loadFixture(t, "casshape/bad", "repro/internal/analysis/cssarif")
	diags, _ := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) == 0 {
		t.Fatal("bad fixture produced no diagnostics to serialize")
	}
	blob, err := SARIF(diags, Analyzers(), pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}

	var log sarifShape
	if err := json.Unmarshal(blob, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URI", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "splash4-vet" {
		t.Errorf("driver name = %q, want splash4-vet", run.Tool.Driver.Name)
	}
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
		if r.FullDescription.Text == "" {
			t.Errorf("rule %s missing fullDescription (is it registered in explain.go?)", r.ID)
		}
		rules[r.ID] = true
	}
	if len(rules) != len(Analyzers()) {
		t.Errorf("rules catalog has %d entries, want one per analyzer (%d)", len(rules), len(Analyzers()))
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d (one per diagnostic)", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if !rules[res.RuleID] {
			t.Errorf("result %d ruleId %q not in the rules catalog", i, res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %d has an empty message", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d startLine = %d, want positive", i, loc.Region.StartLine)
		}
		if filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("result %d URI %q is absolute, want relative to the analysis root", i, loc.ArtifactLocation.URI)
		}
	}
}
