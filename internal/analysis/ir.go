package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file lowers one function body into a lightweight IR: basic blocks of
// shared-memory operations (field reads/writes, lock acquire/release,
// barrier waits, calls, CAS sites) connected by control-flow edges. It is
// deliberately not SSA — the analyzers built on it (guarded-by most of all)
// need exactly two things a flat AST walk cannot give: statement order
// within a path, and meets at control-flow joins for the must-hold lockset.

// OpKind classifies one IR operation.
type OpKind uint8

const (
	// OpRead is a read of a struct field (Obj is the field *types.Var).
	OpRead OpKind = iota
	// OpWrite is a write of a struct field. Elem distinguishes writes
	// through an index or dereference (x.f[i] = v) from writes of the
	// field itself (x.f = v).
	OpWrite
	// OpLock is a call to Lock() on the canonical lock object Obj.
	OpLock
	// OpUnlock is the matching Unlock(). A deferred Unlock emits no op:
	// the lock is held to function exit, which is exactly the semantics
	// the dataflow wants.
	OpUnlock
	// OpWait is a sync4.Barrier Wait() on barrier identity Obj.
	OpWait
	// OpCall is any other call; Callee is its static target when known.
	OpCall
	// OpCAS is a CompareAndSwap call on a sync/atomic value (also emitted
	// as an OpCall for the call graph's benefit).
	OpCAS
)

// Op is one shared-memory-relevant operation.
type Op struct {
	Kind   OpKind
	Obj    types.Object // field var, or canonical lock/barrier root
	Elem   bool         // element-granularity access (indexed/dereferenced)
	Pos    token.Pos
	Call   *ast.CallExpr
	Callee *types.Func
	Go     bool // call spawned with a go statement
}

// Block is one basic block: ops executed in order, then a transfer to any
// successor.
type Block struct {
	Ops   []Op
	Succs []*Block

	in      lockset // dataflow state at block entry
	visited bool
}

// FuncIR is the lowered body of one function.
type FuncIR struct {
	Entry  *Block
	Exit   *Block // synthetic sink for returns and fallthrough
	Blocks []*Block
	Node   *CGNode
}

// IR lowers the node's body on first use and caches it.
func (n *CGNode) IR() *FuncIR {
	if n.ir == nil {
		n.ir = buildIR(n)
	}
	return n.ir
}

type irBuilder struct {
	node *CGNode
	info *types.Info
	ir   *FuncIR
	cur  *Block

	breakTargets    []*Block
	continueTargets []*Block
}

func buildIR(node *CGNode) *FuncIR {
	b := &irBuilder{node: node, info: node.Pkg.Info}
	b.ir = &FuncIR{Node: node}
	b.ir.Entry = b.newBlock()
	b.ir.Exit = b.newBlock()
	b.cur = b.ir.Entry
	b.stmt(node.Body())
	b.link(b.cur, b.ir.Exit)
	return b.ir
}

func (b *irBuilder) newBlock() *Block {
	blk := &Block{}
	b.ir.Blocks = append(b.ir.Blocks, blk)
	return blk
}

func (b *irBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *irBuilder) emit(op Op) {
	b.cur.Ops = append(b.cur.Ops, op)
}

// stmt lowers one statement into the current block, splitting blocks at
// control flow.
func (b *irBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.ExprStmt:
		b.expr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			b.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			b.write(lhs, s.Tok != token.ASSIGN && s.Tok != token.DEFINE)
		}
	case *ast.IncDecStmt:
		b.expr(s.X)
		b.write(s.X, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.expr(s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.link(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.link(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.link(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.link(b.cur, join)
		} else {
			b.link(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		b.stmt(s.Init)
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		b.expr(s.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, exit)
		}
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, head)
		b.cur = body
		b.stmt(s.Body)
		b.stmt(s.Post)
		b.link(b.cur, head)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		b.cur = exit
	case *ast.RangeStmt:
		b.expr(s.X)
		head := b.newBlock()
		b.link(b.cur, head)
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		b.link(head, exit)
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, head)
		b.cur = body
		if s.Key != nil {
			b.write(s.Key, false)
		}
		if s.Value != nil {
			b.write(s.Value, false)
		}
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		b.cur = exit
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.expr(r)
		}
		b.link(b.cur, b.ir.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		switch {
		case s.Tok == token.BREAK && s.Label == nil && len(b.breakTargets) > 0:
			b.link(b.cur, b.breakTargets[len(b.breakTargets)-1])
		case s.Tok == token.CONTINUE && s.Label == nil && len(b.continueTargets) > 0:
			b.link(b.cur, b.continueTargets[len(b.continueTargets)-1])
		case s.Tok == token.GOTO || s.Label != nil:
			// Labeled jumps are rare in this module; treating them as a
			// function exit keeps the must-hold lockset conservative.
			b.link(b.cur, b.ir.Exit)
		}
		if s.Tok != token.FALLTHROUGH {
			b.cur = b.newBlock()
		}
	case *ast.GoStmt:
		b.call(s.Call, true, false)
	case *ast.DeferStmt:
		b.call(s.Call, false, true)
	case *ast.SendStmt:
		b.expr(s.Chan)
		b.expr(s.Value)
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	case *ast.EmptyStmt:
	default:
		// Conservatively walk any remaining statement for expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				b.expr(e)
				return false
			}
			return true
		})
	}
}

// switchLike lowers switch, type switch, and select uniformly: each clause
// is a branch from the head to a join.
func (b *irBuilder) switchLike(s ast.Stmt) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		b.stmt(s.Init)
		b.expr(s.Tag)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.stmt(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	head := b.cur
	join := b.newBlock()
	b.breakTargets = append(b.breakTargets, join)
	for _, cl := range clauses {
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.expr(e)
			}
			for _, st := range cl.Body {
				b.stmt(st)
			}
		case *ast.CommClause:
			hasDefault = hasDefault || cl.Comm == nil
			b.stmt(cl.Comm)
			for _, st := range cl.Body {
				b.stmt(st)
			}
		}
		b.link(b.cur, join)
	}
	if !hasDefault {
		b.link(head, join)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = join
}

// expr emits ops for one expression tree (reads, calls, lock operations),
// skipping nested function literals — those are separate graph nodes.
func (b *irBuilder) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		return
	case *ast.CallExpr:
		b.call(e, false, false)
		return
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			b.emit(Op{Kind: OpRead, Obj: sel.Obj(), Pos: e.Sel.Pos()})
		}
		b.expr(e.X)
		return
	case *ast.ParenExpr:
		b.expr(e.X)
		return
	case *ast.UnaryExpr:
		b.expr(e.X)
		return
	case *ast.StarExpr:
		b.expr(e.X)
		return
	case *ast.BinaryExpr:
		b.expr(e.X)
		b.expr(e.Y)
		return
	case *ast.IndexExpr:
		b.expr(e.X)
		b.expr(e.Index)
		return
	case *ast.SliceExpr:
		b.expr(e.X)
		b.expr(e.Low)
		b.expr(e.High)
		b.expr(e.Max)
		return
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			b.expr(el)
		}
		return
	case *ast.KeyValueExpr:
		b.expr(e.Value)
		return
	case *ast.TypeAssertExpr:
		b.expr(e.X)
		return
	}
}

// call classifies one call expression into lock/unlock/wait/CAS/plain ops.
func (b *irBuilder) call(call *ast.CallExpr, goStmt, deferStmt bool) {
	for _, arg := range call.Args {
		b.expr(arg)
	}
	callee := staticCallee(b.info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		b.expr(sel.X)
		name := sel.Sel.Name
		switch {
		case (name == "Lock" || name == "Unlock") && len(call.Args) == 0 && isMethodCall(b.info, sel):
			root, _ := rootObject(b.info, b.node.assigns(), sel.X, 0)
			if root != nil {
				if deferStmt {
					// defer x.Unlock(): held to function exit.
					return
				}
				kind := OpLock
				if name == "Unlock" {
					kind = OpUnlock
				}
				b.emit(Op{Kind: kind, Obj: root, Pos: call.Pos(), Call: call})
				return
			}
		case name == "Wait" && len(call.Args) == 0:
			if tv, ok := b.info.Types[sel.X]; ok && isSync4Barrier(tv.Type) {
				root, _ := rootObject(b.info, b.node.assigns(), sel.X, 0)
				if root == nil {
					root, _ = rootObject(b.info, nil, sel.X, 0)
				}
				b.emit(Op{Kind: OpWait, Obj: root, Pos: call.Pos(), Call: call})
				return
			}
		case name == "CompareAndSwap" && len(call.Args) == 2:
			b.emit(Op{Kind: OpCAS, Pos: call.Pos(), Call: call, Callee: callee})
		}
	} else {
		b.expr(call.Fun)
	}
	b.emit(Op{Kind: OpCall, Pos: call.Pos(), Call: call, Callee: callee, Go: goStmt})
}

// isMethodCall reports whether sel selects a method (not a field of
// function type), so Lock/Unlock recognition doesn't trip on fields.
func isMethodCall(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		return s.Kind() == types.MethodVal
	}
	// Package-qualified function, not a method.
	return false
}

// write emits the ops for one assignment target: reads of its component
// expressions plus an OpWrite for the field it roots at, when the target
// denotes shared memory. compound marks read-modify-write assignments
// (x.f += v), which also read the target.
func (b *irBuilder) write(lhs ast.Expr, compound bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return // local write; not shared memory
	case *ast.SelectorExpr:
		b.expr(e.X)
		if sel, ok := b.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if b.sharedBase(e.X) {
				b.emit(Op{Kind: OpWrite, Obj: sel.Obj(), Pos: e.Sel.Pos()})
			}
			if compound {
				b.emit(Op{Kind: OpRead, Obj: sel.Obj(), Pos: e.Sel.Pos()})
			}
		}
	case *ast.IndexExpr:
		b.expr(e.Index)
		b.expr(e.X)
		if root, _ := rootObject(b.info, b.node.assigns(), e.X, 0); root != nil {
			if v, ok := root.(*types.Var); ok && v.IsField() {
				b.emit(Op{Kind: OpWrite, Obj: root, Elem: true, Pos: e.Pos()})
			}
		}
	case *ast.StarExpr:
		b.expr(e.X)
		if root, elem := rootObject(b.info, b.node.assigns(), e.X, 0); root != nil {
			if v, ok := root.(*types.Var); ok && v.IsField() {
				b.emit(Op{Kind: OpWrite, Obj: root, Elem: elem, Pos: e.Pos()})
			}
		}
	}
}

// sharedBase reports whether the base expression of a field access denotes
// memory other goroutines could see: anything rooted at a parameter,
// receiver, field, or pointer chain. Only a plain local value variable
// (a struct copied into this frame) is private.
func (b *irBuilder) sharedBase(base ast.Expr) bool {
	root, elem := rootObject(b.info, b.node.assigns(), base, 0)
	if root == nil || elem {
		return true // unknown or reached through a pointer/index: assume shared
	}
	v, ok := root.(*types.Var)
	if !ok {
		return true
	}
	if v.IsField() {
		return true
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return true
	}
	// Parameters of pointer/interface type are shared; a value-typed local
	// or value parameter is this frame's own copy.
	switch v.Type().Underlying().(type) {
	case *types.Struct, *types.Basic, *types.Array:
		return false
	}
	return true
}

// lockset is the set of canonical lock objects held at a program point.
type lockset map[types.Object]bool

func (l lockset) clone() lockset {
	c := make(lockset, len(l))
	for k := range l {
		c[k] = true
	}
	return c
}

func (l lockset) intersect(o lockset) lockset {
	c := make(lockset)
	for k := range l {
		if o[k] {
			c[k] = true
		}
	}
	return c
}

func (l lockset) equal(o lockset) bool {
	if len(l) != len(o) {
		return false
	}
	for k := range l {
		if !o[k] {
			return false
		}
	}
	return true
}

// ForEachOpWithLockset runs a forward must-hold lockset dataflow (meet =
// intersection at joins) seeded with entry, then invokes fn for every op
// with the set of locks held just before it executes.
func (ir *FuncIR) ForEachOpWithLockset(entry lockset, fn func(op *Op, held lockset)) {
	for _, blk := range ir.Blocks {
		blk.in = nil
		blk.visited = false
	}
	if entry == nil {
		entry = lockset{}
	}
	ir.Entry.in = entry.clone()
	ir.Entry.visited = true
	work := []*Block{ir.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := blk.in.clone()
		for i := range blk.Ops {
			op := &blk.Ops[i]
			switch op.Kind {
			case OpLock:
				out[op.Obj] = true
			case OpUnlock:
				delete(out, op.Obj)
			}
		}
		for _, succ := range blk.Succs {
			if !succ.visited {
				succ.in = out.clone()
				succ.visited = true
				work = append(work, succ)
				continue
			}
			merged := succ.in.intersect(out)
			if !merged.equal(succ.in) {
				succ.in = merged
				work = append(work, succ)
			}
		}
	}
	for _, blk := range ir.Blocks {
		if !blk.visited {
			continue
		}
		held := blk.in.clone()
		for i := range blk.Ops {
			op := &blk.Ops[i]
			fn(op, held)
			switch op.Kind {
			case OpLock:
				held[op.Obj] = true
			case OpUnlock:
				delete(held, op.Obj)
			}
		}
	}
}
