package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sync4"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module without external
// tooling: module-internal imports are resolved straight from the source
// tree, everything else (the standard library) goes through the compiler's
// default importer. Analysis covers non-test files; _test.go files host the
// checks themselves and legitimately use raw sync primitives.
type Loader struct {
	ModRoot string // absolute path of the directory holding go.mod
	ModPath string // module path from go.mod, e.g. "repro"

	fset     *token.FileSet
	fallback types.ImporterFrom
	cache    map[string]*loadResult // keyed by import path
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader locates the enclosing module starting at dir and returns a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot:  root,
		ModPath:  modPath,
		fset:     token.NewFileSet(),
		fallback: importer.Default().(types.ImporterFrom),
		cache:    make(map[string]*loadResult),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule walks the whole module and returns every package containing
// non-test Go files, in deterministic path order. Directories named testdata
// or starting with "." or "_" are skipped, as the go tool does.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, l.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// pathForDir maps a directory inside the module to its import path.
func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// DirForPattern expands a command-line argument into package directories:
// "dir/..." walks recursively, anything else is taken as a single directory.
func (l *Loader) DirForPattern(pattern string) ([]string, error) {
	recursive := false
	dir := pattern
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive, dir = true, rest
	}
	if dir == "" || dir == "." {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("analysis: %s is not a directory", pattern)
	}
	if !recursive {
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("analysis: no Go files in %s", pattern)
		}
		return []string{abs}, nil
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadDirDefault loads the package in dir under its natural import path
// within the module.
func (l *Loader) LoadDirDefault(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(abs, l.pathForDir(abs))
}

// LoadDir parses and type-checks the package in dir under the given import
// path. It returns (nil, nil) when the directory holds only test files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if res, ok := l.cache[path]; ok {
		return res.pkg, res.err
	}
	pkg, err := l.loadDirUncached(dir, path)
	l.cache[path] = &loadResult{pkg, err}
	return pkg, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) loadDirUncached(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH file
		// suffixes) the way the compiler does; otherwise platform-specific
		// file pairs type-check as duplicate declarations.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// moduleImporter resolves module-internal import paths from source and
// defers the rest to the default (compiler) importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for import %q", path)
		}
		return pkg.Types, nil
	}
	return l.fallback.ImportFrom(path, dir, mode)
}
