package analysis

// ReqStale flags requirement tags that no longer mean what they say:
// malformed //sync4:req directives (bad ID grammar, bad since-version,
// missing RFC2119 keyword or sentence), duplicate IDs, //sync4:covers
// references to requirements nobody declares, since-versions ahead of the
// published spec version, and directives floating outside any declaration's
// doc comment. Each of these silently corrupts the generated conformance
// document, so they are hard errors rather than generator warnings.
var ReqStale = &Analyzer{
	Name:   "req-stale",
	Doc:    "flag malformed, duplicate, dangling, or version-drifted requirement tags",
	Family: FamilyConformance,
	Run:    runReqStale,
}

func runReqStale(p *Pass) {
	for _, d := range reqFactsOf(p.Graph).stale {
		if p.Owns(d.pos) {
			p.Reportf(d.pos, "%s", d.msg)
		}
	}
}
