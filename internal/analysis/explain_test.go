package analysis

import "testing"

// TestExplainCoversAllAnalyzers pins the contract behind `splash4-vet
// -explain` and the SARIF fullDescription: registering an analyzer without
// long-form rule documentation is an error.
func TestExplainCoversAllAnalyzers(t *testing.T) {
	for _, a := range Analyzers() {
		text, err := Explain(a.Name)
		if err != nil {
			t.Errorf("Explain(%q): %v", a.Name, err)
			continue
		}
		if len(text) < 100 {
			t.Errorf("Explain(%q) is %d bytes; long-form documentation expected", a.Name, len(text))
		}
	}
	if _, err := Explain("no-such-rule"); err == nil {
		t.Error("Explain accepted an unknown rule name")
	}
}
