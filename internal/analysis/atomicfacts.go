package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file collects the shared facts the atomic-layout and plain-atomic-mix
// analyzers consume: which struct fields are accessed atomically (through
// sync/atomic's typed values or its package-level functions), from which
// functions, whether inside a spin/retry loop — and which functions can run
// concurrently at all.

// atomicAccess is one atomic operation on a struct field.
type atomicAccess struct {
	field *types.Var // the struct field holding the atomic word
	node  *CGNode    // function containing the access
	pos   token.Pos
	write bool     // Store/Add/Swap/CAS/Or/And (vs pure Load)
	raw   bool     // atomic.AddInt64(&x.f, ...) on a plain integer field
	wide  bool     // 64-bit operand (alignment-sensitive on 32-bit targets)
	loop  ast.Node // innermost enclosing for/range statement, nil outside loops
	span  span     // extent of the whole call expression (for raw-access exclusion)
}

// atomicWriteMethods are the sync/atomic value methods (and function-name
// prefixes) that publish, as opposed to Load's pure read.
var atomicWriteMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
}

// isAtomicValueType reports whether t is one of sync/atomic's typed values.
func isAtomicValueType(t types.Type) (wide bool, ok bool) {
	named, okNamed := t.(*types.Named)
	if !okNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false, false
	}
	switch obj.Name() {
	case "Int64", "Uint64":
		return true, true
	case "Int32", "Uint32", "Bool", "Uintptr", "Pointer", "Value":
		return false, true
	}
	return false, false
}

// collectAtomicAccesses scans every function body in the graph once and
// returns the atomic accesses grouped by field. Memoized on the graph.
func collectAtomicAccesses(g *CallGraph) map[*types.Var][]atomicAccess {
	const memoKey = "atomic-accesses"
	if v, ok := g.memo[memoKey]; ok {
		return v.(map[*types.Var][]atomicAccess)
	}
	out := make(map[*types.Var][]atomicAccess)
	forEachNode(g, func(n *CGNode) {
		collectNodeAccesses(n, out)
	})
	g.memo[memoKey] = out
	return out
}

// forEachNode visits every declared function and literal node of the graph
// in deterministic source order.
func forEachNode(g *CallGraph, fn func(*CGNode)) {
	nodes := make([]*CGNode, 0, len(g.Nodes)+len(g.Lits))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	for _, n := range g.Lits {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)
	for _, n := range nodes {
		fn(n)
	}
}

func sortNodes(nodes []*CGNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Body().Pos() < nodes[j-1].Body().Pos(); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// collectNodeAccesses walks one body tracking the innermost enclosing loop,
// recording typed-value method calls and raw atomic.* function calls that
// root at struct fields. Nested literals are skipped — they are nodes of
// their own.
func collectNodeAccesses(n *CGNode, out map[*types.Var][]atomicAccess) {
	info := n.Pkg.Info
	var walk func(ast.Node, ast.Node) bool
	walk = func(nd ast.Node, loop ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			ast.Inspect(nd.Body, func(m ast.Node) bool { return walk(m, nd) })
			walkParts(nd.Init, nd.Cond, nd.Post, loop, nd, walk)
			return false
		case *ast.RangeStmt:
			ast.Inspect(nd.Body, func(m ast.Node) bool { return walk(m, nd) })
			if nd.X != nil {
				ast.Inspect(nd.X, func(m ast.Node) bool { return walk(m, loop) })
			}
			return false
		case *ast.CallExpr:
			if acc, ok := classifyAtomicCall(n, info, nd); ok {
				acc.loop = loop
				out[acc.field] = append(out[acc.field], acc)
			}
		}
		return true
	}
	ast.Inspect(n.Body(), func(m ast.Node) bool { return walk(m, nil) })
}

// walkParts walks a for statement's header clauses. The condition re-runs
// every iteration, so it counts as loop-resident; init and post are close
// enough to the loop to treat the same way.
func walkParts(init ast.Stmt, cond ast.Expr, post ast.Stmt, outer, self ast.Node,
	walk func(ast.Node, ast.Node) bool) {
	if init != nil {
		ast.Inspect(init, func(m ast.Node) bool { return walk(m, outer) })
	}
	if cond != nil {
		ast.Inspect(cond, func(m ast.Node) bool { return walk(m, self) })
	}
	if post != nil {
		ast.Inspect(post, func(m ast.Node) bool { return walk(m, self) })
	}
}

// classifyAtomicCall recognizes the two atomic access shapes:
//
//	x.f.Load()                     typed sync/atomic value method
//	atomic.AddInt64(&x.f, 1)       package function on a raw integer field
func classifyAtomicCall(n *CGNode, info *types.Info, call *ast.CallExpr) (atomicAccess, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return atomicAccess{}, false
	}
	// Typed value method: receiver expression's type is a sync/atomic type.
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		wide, isAtomic := isAtomicValueType(s.Recv())
		if ptr, okPtr := s.Recv().(*types.Pointer); !isAtomic && okPtr {
			wide, isAtomic = isAtomicValueType(ptr.Elem())
		}
		if isAtomic {
			field := fieldOf(n, info, sel.X)
			if field == nil {
				return atomicAccess{}, false
			}
			return atomicAccess{
				field: field, node: n, pos: sel.Sel.Pos(),
				write: atomicWriteMethods[sel.Sel.Name],
				wide:  wide,
				span:  span{call.Pos(), call.End()},
			}, true
		}
	}
	// Package function: atomic.LoadInt64(&x.f) and friends.
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return atomicAccess{}, false
	}
	if len(call.Args) == 0 {
		return atomicAccess{}, false
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return atomicAccess{}, false
	}
	field := fieldOf(n, info, un.X)
	if field == nil {
		return atomicAccess{}, false
	}
	name := callee.Name()
	write := false
	for prefix := range atomicWriteMethods {
		if strings.HasPrefix(name, prefix) {
			write = true
			break
		}
	}
	return atomicAccess{
		field: field, node: n, pos: call.Pos(),
		write: write, raw: true,
		wide: strings.HasSuffix(name, "64"),
		span: span{call.Pos(), call.End()},
	}, true
}

// fieldOf resolves expr to the struct field it denotes, or nil.
func fieldOf(n *CGNode, info *types.Info, expr ast.Expr) *types.Var {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	}
	root, _ := rootObject(info, n.assigns(), expr, 0)
	if v, ok := root.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// concurrentNodes computes (memoized) the set of functions that can execute
// on more than one goroutine at once, as far as the graph can see:
//
//   - non-exempt members of the core.Parallel fixpoint,
//   - bodies spawned with go statements,
//   - everything declared in the sync4 kits and the trace recorder — being
//     callable concurrently is those packages' contract,
//
// closed transitively over static call edges and nested literals.
func concurrentNodes(g *CallGraph) map[*CGNode]bool {
	const memoKey = "concurrent-nodes"
	if v, ok := g.memo[memoKey]; ok {
		return v.(map[*CGNode]bool)
	}
	conc := make(map[*CGNode]bool)
	var seed func(n *CGNode)
	seed = func(n *CGNode) {
		if n == nil || conc[n] {
			return
		}
		conc[n] = true
		for _, cs := range n.Calls {
			if callee := g.NodeOf(cs.Callee); callee != nil {
				seed(callee)
			}
		}
		for _, lit := range n.Lits {
			seed(lit)
		}
	}
	pc := parallelContext(g)
	for node, pi := range pc.info {
		if !pi.exempt {
			seed(node)
		}
	}
	forEachNode(g, func(n *CGNode) {
		if concByContract(n) {
			seed(n)
		}
		for _, cs := range n.Calls {
			if !cs.Go {
				continue
			}
			if callee := g.NodeOf(cs.Callee); callee != nil {
				seed(callee)
			}
			if lit, ok := ast.Unparen(cs.Call.Fun).(*ast.FuncLit); ok {
				seed(g.Lits[lit])
			}
		}
	})
	g.memo[memoKey] = conc
	return conc
}

// concByContract reports whether n belongs to a package whose API contract
// is concurrent use: the sync4 kits and the trace recorder.
func concByContract(n *CGNode) bool {
	path := n.Pkg.Path
	return strings.Contains(path, "internal/sync4") || strings.Contains(path, "internal/trace")
}
