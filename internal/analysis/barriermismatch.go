package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// BarrierMismatch flags NewBarrier(n) calls whose participant count provably
// differs from the goroutine fan-out created in the same function. A barrier
// sized below the fan-out lets phases overlap (a data race); sized above it,
// every Wait deadlocks. The check is intraprocedural and only fires when
// both counts resolve to compile-time constants, so it cannot produce false
// positives on counts that flow in through core.Config.
var BarrierMismatch = &Analyzer{
	Name:   "barrier-mismatch",
	Doc:    "flags NewBarrier(n) where n provably differs from the same function's goroutine fan-out",
	Family: FamilySyntactic,
	Run:    runBarrierMismatch,
}

// fanOut is one observed source of parallelism inside a function.
type fanOut struct {
	pos   token.Pos
	count int64
	// exact is true for core.Parallel(n, ...), where n is the total
	// participant count. Hand-rolled `for { go ... }` loops spawn count
	// goroutines but the spawner itself often participates too, so both
	// count and count+1 are accepted for those.
	exact bool
	what  string
}

func runBarrierMismatch(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBarriersInFunc(pass, fn)
		}
	}
}

func checkBarriersInFunc(pass *Pass, fn *ast.FuncDecl) {
	consts := singleConstAssignments(pass, fn)

	type barrier struct {
		pos token.Pos
		n   int64
	}
	var barriers []barrier
	var fans []fanOut

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewBarrier" && len(n.Args) == 1 {
				if v, ok := resolveInt(pass, consts, n.Args[0], 0); ok {
					barriers = append(barriers, barrier{n.Args[0].Pos(), v})
				}
			}
			if callee := calleeFunc(pass, n); callee != nil &&
				callee.Name() == "Parallel" && callee.Pkg() != nil &&
				strings.HasSuffix(callee.Pkg().Path(), "internal/core") && len(n.Args) >= 1 {
				if v, ok := resolveInt(pass, consts, n.Args[0], 0); ok {
					fans = append(fans, fanOut{n.Pos(), v, true, "core.Parallel fan-out"})
				}
			}
		case *ast.ForStmt:
			if count, ok := countedGoLoop(pass, consts, n); ok {
				fans = append(fans, fanOut{n.Pos(), count, false, "goroutine loop"})
			}
		}
		return true
	})

	for _, b := range barriers {
		for _, f := range fans {
			if b.n == f.count || (!f.exact && b.n == f.count+1) {
				continue
			}
			pass.ReportFixf(b.pos, "make the barrier count match the participants that will call Wait",
				"barrier created for %d participants but %s at %s runs %d goroutines",
				b.n, f.what, pass.Fset.Position(f.pos), f.count)
		}
	}
}

// countedGoLoop recognizes `for i := lo; i < hi; i++ { ... go ... }` (or
// i <= hi) and returns the number of goroutines it spawns.
func countedGoLoop(pass *Pass, consts map[*ast.Ident]ast.Expr, loop *ast.ForStmt) (int64, bool) {
	spawns := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
		}
		return !spawns
	})
	if !spawns {
		return 0, false
	}
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return 0, false
	}
	lo, ok := resolveInt(pass, consts, init.Rhs[0], 0)
	if !ok {
		return 0, false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return 0, false
	}
	hi, ok := resolveInt(pass, consts, cond.Y, 0)
	if !ok {
		return 0, false
	}
	if inc, ok := loop.Post.(*ast.IncDecStmt); !ok || inc.Tok != token.INC {
		return 0, false
	}
	count := hi - lo
	if cond.Op == token.LEQ {
		count++
	}
	if count < 0 {
		count = 0
	}
	return count, true
}

// singleConstAssignments maps each local identifier that is assigned exactly
// once in fn to its defining expression, the raw material for resolveInt's
// one-step constant propagation.
func singleConstAssignments(pass *Pass, fn *ast.FuncDecl) map[*ast.Ident]ast.Expr {
	counts := make(map[string]int) // object id -> times assigned
	exprs := make(map[*ast.Ident]ast.Expr)
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		counts[id.Name]++
		exprs[id] = rhs
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				record(id, nil)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				} else {
					record(name, nil)
				}
			}
		}
		return true
	})
	// Keep only identifiers assigned exactly once with a usable RHS.
	result := make(map[*ast.Ident]ast.Expr)
	for id, rhs := range exprs {
		if counts[id.Name] == 1 && rhs != nil {
			result[id] = rhs
		}
	}
	return result
}

// resolveInt evaluates expr to an int64 when it is a compile-time constant,
// or a local variable assigned exactly once from one.
func resolveInt(pass *Pass, consts map[*ast.Ident]ast.Expr, expr ast.Expr, depth int) (int64, bool) {
	if depth > 8 {
		return 0, false
	}
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v, true
		}
		return 0, false
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return 0, false
	}
	for def, rhs := range consts {
		if pass.Info.Defs[def] == obj || pass.Info.Uses[def] == obj {
			return resolveInt(pass, consts, rhs, depth+1)
		}
	}
	return 0, false
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
