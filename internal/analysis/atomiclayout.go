package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicLayout checks struct layouts against the memory-system hazards that
// dominate atomic-operation cost (Schweizer et al.): it flags
//
//  1. raw 64-bit fields used with sync/atomic package functions that are not
//     guaranteed 8-byte aligned on 32-bit targets (only the first word of an
//     allocated struct is; sync/atomic's typed values are always safe thanks
//     to the compiler's align64 rule),
//  2. pairs of independently contended atomic fields that share a 64-byte
//     cache line without an intervening pad — each CAS/store on one field
//     steals the line from spinners on the other ("false sharing"),
//  3. per-goroutine structs that declare pad fields (so isolation is clearly
//     intended) but whose total size is not a multiple of 64, so consecutive
//     slice elements still straddle lines.
//
// Layouts come from the analysis's own gc-faithful calculator
// (layoutfacts.go); contention facts come from the core.Parallel fixpoint
// and the concurrency-contract packages (atomicfacts.go). "Independently
// contended" is judged at loop granularity: a spin loop that touches field A
// but not field B, while B is written elsewhere in concurrent code, means A's
// spinners pay for B's writes unless a pad separates them.
var AtomicLayout = &Analyzer{
	Name: "atomic-layout",
	Doc: "flag unaligned 64-bit atomics and independently-contended atomic " +
		"fields sharing a cache line without padding",
	Family: FamilyPerformance,
	Run:    runAtomicLayout,
}

func runAtomicLayout(pass *Pass) {
	for _, d := range atomicLayoutModule(pass.Graph) {
		if pass.Owns(d.pos) {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

func atomicLayoutModule(g *CallGraph) []posMsg {
	const memoKey = "atomiclayout-findings"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]posMsg)
	}
	accesses := collectAtomicAccesses(g)
	conc := concurrentNodes(g)

	var out []posMsg
	out = append(out, align64Hazards(accesses)...)
	out = append(out, falseSharePairs(g, accesses, conc)...)
	out = append(out, padStrideHazards(g)...)

	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	g.memo[memoKey] = out
	return out
}

// align64Hazards flags raw 64-bit fields passed to sync/atomic functions
// whose offset under the 386 layout model is nonzero. The Go memory model's
// documented exception — the first word of an allocated struct is 64-bit
// aligned — covers offset 0 only; everything else needs either a typed
// atomic (compiler-aligned everywhere) or a leading position.
func align64Hazards(accesses map[*types.Var][]atomicAccess) []posMsg {
	var out []posMsg
	for field, accs := range accesses {
		raw64 := false
		var first atomicAccess
		for _, a := range accs {
			if a.raw && a.wide {
				if !raw64 || a.pos < first.pos {
					first = a
				}
				raw64 = true
			}
		}
		if !raw64 {
			continue
		}
		st, ok := owningStruct(field)
		if !ok {
			continue
		}
		lay, idx, ok := arch386.fieldHome(st, field)
		if !ok || lay.fields[idx].offset == 0 {
			continue
		}
		out = append(out, posMsg{pos: first.pos, msg: fmt.Sprintf(
			"64-bit atomic on field %s at offset %d (GOARCH=386): only the first "+
				"word of an allocated struct is guaranteed 8-byte aligned; use "+
				"atomic.Int64/atomic.Uint64 or move the field to offset 0",
			field.Name(), lay.fields[idx].offset)})
	}
	return out
}

// falseSharePairs flags unpadded same-line pairs of atomic fields where one
// field is spun on (accessed in a loop that does not touch the other) while
// the other is written, both from concurrent code.
func falseSharePairs(g *CallGraph, accesses map[*types.Var][]atomicAccess, conc map[*CGNode]bool) []posMsg {
	// Group atomically accessed fields by their owning struct.
	byStruct := make(map[*types.Struct][]*types.Var)
	for field, accs := range accesses {
		if !anyConcurrent(accs, conc) {
			continue
		}
		st, ok := owningStruct(field)
		if !ok {
			continue
		}
		byStruct[st] = append(byStruct[st], field)
	}

	var out []posMsg
	for st, fields := range byStruct {
		if len(fields) < 2 {
			continue
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
		lay := arch64.structLayout(st)
		// Collect the fields involved in at least one hazardous pair, grouped
		// by cache line, so one struct yields one finding per line instead of
		// a quadratic pair listing.
		involved := make(map[int64]map[int]bool) // cache line -> field indexes
		for i := 0; i < len(fields); i++ {
			for j := i + 1; j < len(fields); j++ {
				f1, f2 := fields[i], fields[j]
				_, i1, ok1 := arch64.fieldHome(st, f1)
				_, i2, ok2 := arch64.fieldHome(st, f2)
				if !ok1 || !ok2 {
					continue
				}
				ln := line(lay.fields[i1].offset)
				if ln != line(lay.fields[i2].offset) {
					continue
				}
				if padBetween(lay, i1, i2) {
					continue
				}
				if !independentlyContended(accesses, conc, f1, f2) {
					continue
				}
				if involved[ln] == nil {
					involved[ln] = make(map[int]bool)
				}
				involved[ln][i1] = true
				involved[ln][i2] = true
			}
		}
		for _, idxSet := range involved {
			idxs := make([]int, 0, len(idxSet))
			for i := range idxSet {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			names, offsets := "", ""
			var at token.Pos
			for k, i := range idxs {
				if k > 0 {
					names += ", "
					offsets += ", "
				}
				names += lay.fields[i].field.Name()
				offsets += fmt.Sprintf("%d", lay.fields[i].offset)
				if p := lay.fields[i].field.Pos(); p > at {
					at = p
				}
			}
			out = append(out, posMsg{pos: at, msg: fmt.Sprintf(
				"atomic fields %s share a cache line (offsets %s) and are "+
					"contended independently; insert cache-line padding "+
					"(_ [N]byte) between them", names, offsets)})
		}
	}
	return out
}

// anyConcurrent reports whether any access happens in a concurrent node.
func anyConcurrent(accs []atomicAccess, conc map[*CGNode]bool) bool {
	for _, a := range accs {
		if conc[a.node] {
			return true
		}
	}
	return false
}

// padBetween reports whether an explicit pad field separates fields i1 and
// i2 in declaration order — the idiom that declares isolation intent (even
// when the pad is, say, off by a line; sizing is the pad-stride rule's job).
func padBetween(lay structLayoutInfo, i1, i2 int) bool {
	lo, hi := i1, i2
	if lo > hi {
		lo, hi = hi, lo
	}
	for k := lo + 1; k < hi; k++ {
		if isPadField(lay.fields[k].field) {
			return true
		}
	}
	return false
}

// independentlyContended reports whether some concurrent loop accesses
// exactly one of the two fields while the other is written from concurrent
// code — the access pattern where line stealing costs a spinner its cache
// line. A loop that touches both fields (a CAS retry loop over the pair) is
// intrinsic contention; padding cannot help it.
func independentlyContended(accesses map[*types.Var][]atomicAccess, conc map[*CGNode]bool, f1, f2 *types.Var) bool {
	return loopOnOneWriteOther(accesses, conc, f1, f2) ||
		loopOnOneWriteOther(accesses, conc, f2, f1)
}

func loopOnOneWriteOther(accesses map[*types.Var][]atomicAccess, conc map[*CGNode]bool, spun, written *types.Var) bool {
	hasWrite := false
	for _, a := range accesses[written] {
		if a.write && conc[a.node] {
			hasWrite = true
			break
		}
	}
	if !hasWrite {
		return false
	}
	for _, a := range accesses[spun] {
		if a.loop == nil || !conc[a.node] {
			continue
		}
		if !loopTouches(accesses[written], a.loop) {
			return true
		}
	}
	return false
}

// loopTouches reports whether any access in accs lies inside loop's extent.
func loopTouches(accs []atomicAccess, loop ast.Node) bool {
	for _, a := range accs {
		if a.pos >= loop.Pos() && a.pos < loop.End() {
			return true
		}
	}
	return false
}

// padStrideHazards flags structs that declare pad fields and are used as
// slice or array elements, but whose amd64 size is not a multiple of the
// cache line — so the declared isolation breaks for every element after the
// first.
func padStrideHazards(g *CallGraph) []posMsg {
	elemTypes := sliceElemStructs(g)
	var out []posMsg
	for _, pkg := range g.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || !elemTypes[named.Obj()] {
				continue
			}
			hasPad := false
			for i := 0; i < st.NumFields(); i++ {
				if isPadField(st.Field(i)) {
					hasPad = true
					break
				}
			}
			if !hasPad {
				continue
			}
			size := arch64.sizeof(st)
			if size%cacheLineSize == 0 {
				continue
			}
			out = append(out, posMsg{pos: tn.Pos(), msg: fmt.Sprintf(
				"struct %s declares cache-line padding but is %d bytes as a "+
					"slice element (not a multiple of %d); resize the pad so "+
					"elements do not straddle lines",
				tn.Name(), size, cacheLineSize)})
		}
	}
	return out
}

// sliceElemStructs collects named struct types used as slice or array
// element types anywhere in the module's type-checked expressions.
func sliceElemStructs(g *CallGraph) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	note := func(t types.Type) {
		var elem types.Type
		switch u := t.Underlying().(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		default:
			return
		}
		if named, ok := elem.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				out[named.Obj()] = true
			}
		}
	}
	for _, pkg := range g.Pkgs {
		for _, tv := range pkg.Info.Types {
			note(tv.Type)
		}
		// Struct fields of slice type don't always appear as expression
		// types; scan declared struct shapes too.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if st, ok := tn.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					note(st.Field(i).Type())
				}
			}
		}
	}
	return out
}

// owningStruct finds the declared struct type containing field f, by
// scanning the field's package scope. ok=false for fields of unnamed struct
// types declared inline (rare in this codebase, and un-addressable for a
// layout diagnostic anyway).
func owningStruct(f *types.Var) (*types.Struct, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return nil, false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return st, true
			}
		}
	}
	return nil, false
}
