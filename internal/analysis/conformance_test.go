package analysis

import (
	"bytes"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadWholeModule type-checks the full module with a fresh loader, so two
// calls share nothing — not even a FileSet.
func loadWholeModule(t *testing.T) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestConformanceDeterministic generates the document twice from fully
// independent loads: the bytes must match, every MUST must be covered, and
// the spec must have reached the size the suite promises.
func TestConformanceDeterministic(t *testing.T) {
	r1, err := Conformance(loadWholeModule(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Conformance(loadWholeModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Doc, r2.Doc) {
		t.Fatal("two independent generations produced different documents; the renderer is not deterministic")
	}
	if len(r1.Uncovered) > 0 {
		t.Fatalf("uncovered MUST-level requirements in the module: %v", r1.Uncovered)
	}
	if r1.Total < 40 {
		t.Fatalf("conformance document holds %d requirements; the spec floor is 40", r1.Total)
	}
	if r1.Version < 1 {
		t.Fatalf("resolved spec version %d; want >= 1", r1.Version)
	}
}

// TestConformanceDocCommitted is the drift gate in test form: the committed
// docs/CONFORMANCE.md must be byte-identical to what the tree generates.
func TestConformanceDocCommitted(t *testing.T) {
	res, err := Conformance(loadWholeModule(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "docs", "CONFORMANCE.md")
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed conformance document: %v", err)
	}
	if !bytes.Equal(committed, res.Doc) {
		t.Fatalf("%s is stale; regenerate with `make conformance-gen`", path)
	}
}

// TestConformanceRecordsUncoveredMusts renders the bad coverage fixture:
// generation succeeds (the tags are well-formed), but all three broken MUSTs
// are recorded and marked in the document, while the advisory SHOULD is not.
func TestConformanceRecordsUncoveredMusts(t *testing.T) {
	pkg := loadFixture(t, "reqcoverage/bad", "repro/internal/analysis/rcfixbadgen")
	res, err := Conformance([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SYNC4-RCA-001", "SYNC4-RCA-002", "SYNC4-RCA-003"}
	if len(res.Uncovered) != len(want) {
		t.Fatalf("uncovered = %v; want %v", res.Uncovered, want)
	}
	for i, id := range want {
		if res.Uncovered[i] != id {
			t.Fatalf("uncovered = %v; want %v", res.Uncovered, want)
		}
	}
	doc := string(res.Doc)
	if strings.Count(doc, "**UNCOVERED**") != 3 {
		t.Fatalf("document marks %d requirements UNCOVERED; want 3", strings.Count(doc, "**UNCOVERED**"))
	}
	if !strings.Contains(doc, "advisory level, not required") {
		t.Fatal("uncovered SHOULD-level requirement lost its advisory coverage line")
	}
}

// TestConformanceRefusesStaleTags points the generator at the stale-tag
// fixture: it must refuse to render rather than publish a corrupted spec.
func TestConformanceRefusesStaleTags(t *testing.T) {
	pkg := loadFixture(t, "reqstale/bad", "repro/internal/analysis/rsfixbadgen")
	if _, err := Conformance([]*Package{pkg}); err == nil {
		t.Fatal("generator accepted a tree with invalid requirement tags")
	} else if !strings.Contains(err.Error(), "invalid requirement tag") {
		t.Fatalf("unexpected refusal message: %v", err)
	}
}

// TestReqParseEdgeCases drives the directive parser over shapes the golden
// fixtures cannot carry (a trailing want comment would become part of the
// directive text): truncated directives, a keyword with no sentence, and an
// empty covers list.
func TestReqParseEdgeCases(t *testing.T) {
	cases := []struct {
		text   string
		substr string
	}{
		{"//sync4:req SYNC4-X-001", "malformed"},
		{"//sync4:req SYNC4-X-001 v1 MUST", "needs a requirement sentence"},
		{"//sync4:req SYNC4-X-002 v1 MUST NOT", "needs a requirement sentence"},
		{"//sync4:covers", "empty"},
	}
	for _, tc := range cases {
		f := &reqFacts{byID: make(map[string]*Requirement), version: 1}
		c := &ast.Comment{Slash: token.Pos(1), Text: tc.text}
		at := attachment{declName: "edge.Case"}
		if strings.HasPrefix(tc.text, coversDirective) {
			f.parseCovers(c, tc.text, at)
		} else {
			f.parseReq(c, tc.text, at)
		}
		if len(f.stale) != 1 || !strings.Contains(f.stale[0].msg, tc.substr) {
			t.Errorf("%q: stale = %v; want one entry containing %q", tc.text, f.stale, tc.substr)
		}
		if len(f.reqs) != 0 || len(f.covers) != 0 {
			t.Errorf("%q: malformed directive was recorded as a fact", tc.text)
		}
	}
}
