package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestCallGraphSoundOnModule is the soundness property test over the module
// itself: every call expression go/types can statically resolve to a
// function declared in the module must appear as an edge in the graph,
// attributed to the correct enclosing body; every declared body must have a
// node; and the interprocedural layers (IR lowering, parallel context, wait
// summaries) must process every node without panicking.
func TestCallGraphSoundOnModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkgs)

	// Every declared function body has a node.
	declared := make(map[*types.Func]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				declared[fn] = true
				if g.Nodes[fn] == nil {
					t.Errorf("declared function %s has no call-graph node", fn.FullName())
				}
			}
		}
	}
	if len(declared) < 100 {
		t.Fatalf("only %d declared functions found; module walk lost coverage", len(declared))
	}

	// Independent sweep: every statically resolvable call expression in the
	// module must have been recorded as an edge by exactly the graph's own
	// scanner (including calls under go/defer and inside literals).
	recorded := make(map[*ast.CallExpr]*types.Func)
	forEachNode(g, func(n *CGNode) {
		for _, cs := range n.Calls {
			recorded[cs.Call] = cs.Callee
		}
	})
	edges := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pkg.Info, call)
				if callee == nil || !declared[callee] {
					return true
				}
				edges++
				got, ok := recorded[call]
				if !ok {
					pos := pkg.Fset.Position(call.Pos())
					t.Errorf("%s: resolvable call to %s missing from the graph", pos, callee.FullName())
				} else if got != callee {
					pos := pkg.Fset.Position(call.Pos())
					t.Errorf("%s: call recorded with callee %v, go/types resolves %v", pos, got, callee)
				}
				return true
			})
		}
	}
	if edges < 50 {
		t.Fatalf("only %d static in-module call edges found; resolution lost coverage", edges)
	}

	// IR lowering and the wait-summary fixpoint must handle every body —
	// generics, build-constrained files, and all — without panicking.
	forEachNode(g, func(n *CGNode) {
		ir := n.IR()
		if ir.Entry == nil || ir.Exit == nil {
			t.Errorf("%s: IR missing entry/exit", n.Name())
		}
		ir.ForEachOpWithLockset(nil, func(op *Op, held lockset) {})
	})
	funcWaitSummaries(g)

	// The parallel context must find the workloads' worker groups and
	// propagate beyond the entry bodies.
	sites := g.ParallelEntries()
	resolvedEntries := 0
	for _, s := range sites {
		if s.Entry != nil {
			resolvedEntries++
		}
	}
	if resolvedEntries < 5 {
		t.Fatalf("only %d resolved Parallel entries; worker detection lost coverage", resolvedEntries)
	}
	pc := parallelContext(g)
	if len(pc.info) <= resolvedEntries {
		t.Errorf("parallel context covers %d functions for %d entries; interprocedural propagation seems dead",
			len(pc.info), resolvedEntries)
	}
}
