package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ConstructCopy flags by-value copies of types that embed atomic state
// (sync/atomic's typed atomics or sync's locks). A copied atomic is a new,
// unrelated memory cell: goroutines that received the copy update a value
// nobody else reads, which is precisely the kind of silent corruption the
// Splash-3 authors found shipped in Splash-2 for twenty years. Constructs
// carrying such state must be shared by pointer.
var ConstructCopy = &Analyzer{
	Name:   "construct-copy",
	Doc:    "flags by-value copies (assignment, call, range, receiver) of types holding atomics or locks",
	Family: FamilySyntactic,
	Run:    runConstructCopy,
}

// atomicStructs are the sync/atomic types whose value identity matters.
var atomicStructs = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// lockStructs are the sync types that must not be copied after first use.
var lockStructs = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Once": true, "Map": true, "Pool": true,
}

// atomicStateIn returns a description of the first piece of atomic state
// found inside t by value (not behind a pointer), or "" if there is none.
func atomicStateIn(t types.Type) string {
	return atomicStateRec(t, make(map[types.Type]bool))
}

func atomicStateRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "sync/atomic" && atomicStructs[obj.Name()]:
				return "sync/atomic." + obj.Name()
			case obj.Pkg().Path() == "sync" && lockStructs[obj.Name()]:
				return "sync." + obj.Name()
			}
		}
		return atomicStateRec(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if s := atomicStateRec(f.Type(), seen); s != "" {
				return fmt.Sprintf("%s (field %s)", s, f.Name())
			}
		}
	case *types.Array:
		return atomicStateRec(u.Elem(), seen)
	}
	return ""
}

func runConstructCopy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopiedRead(pass, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopiedRead(pass, v, "variable initialization")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopiedRead(pass, arg, "argument")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					checkCopiedRead(pass, res, "return")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							if state := atomicStateIn(obj.Type()); state != "" {
								pass.ReportFixf(n.Value.Pos(), "range over indices or a slice of pointers",
									"range copies element of type %s, which contains %s",
									types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)), state)
							}
						}
					}
				}
			case *ast.FuncDecl:
				checkFuncSignature(pass, n)
			}
			return true
		})
	}
}

// checkCopiedRead flags expr when it reads an existing value whose type
// carries atomic state — the read itself materializes a copy.
func checkCopiedRead(pass *Pass, expr ast.Expr, context string) {
	if !readsExistingValue(pass, expr) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	state := atomicStateIn(tv.Type)
	if state == "" {
		return
	}
	pass.ReportFixf(expr.Pos(), "pass a pointer instead",
		"%s copies value of type %s, which contains %s",
		context, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), state)
}

// readsExistingValue reports whether expr denotes a value that already
// lives somewhere (so evaluating it in a value context copies shared state),
// as opposed to a fresh composite literal or call result.
func readsExistingValue(pass *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		_, isVar := pass.Info.Uses[e].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok {
			return sel.Kind() == types.FieldVal
		}
		_, isVar := pass.Info.Uses[e.Sel].(*types.Var) // package-qualified var
		return isVar
	case *ast.IndexExpr:
		tv, ok := pass.Info.Types[e.X]
		if !ok || tv.Type == nil {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Map:
			return true
		}
		return false
	case *ast.StarExpr:
		return true // explicit dereference copy
	case *ast.ParenExpr:
		return readsExistingValue(pass, e.X)
	}
	return false
}

// checkFuncSignature flags value receivers and value parameters whose types
// carry atomic state: every call would copy the construct.
func checkFuncSignature(pass *Pass, fn *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			return
		}
		if state := atomicStateIn(tv.Type); state != "" {
			pass.ReportFixf(field.Type.Pos(), "declare it as *"+types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
				"%s of %s is passed by value but contains %s",
				what, fn.Name.Name, state)
		}
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			check(f, "receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			check(f, "parameter")
		}
	}
}
