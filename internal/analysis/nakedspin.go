package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NakedSpin flags busy-wait loops over plain memory: a for-condition that
// reads ordinary variables while the loop body performs no call, channel
// operation, or write to any variable the condition reads. Under the Go
// memory model such a loop is a data race that may never terminate (the
// compiler may hoist the load); the paper's lock-free constructs spin on
// atomics, which is what the Kit's Flag and Queue provide.
//
// Two shapes beyond the plain `for cond {}` are recognized:
//
//   - the cond-less break-gate, `for { if done { break } }`, which is the
//     same busy-wait with the condition pushed into the body;
//   - getter and method-value conditions, `for !p.ready() {}` or
//     `check := p.ready; for !check() {}`, where the callee is a trivial
//     single-return accessor over plain memory — the call hides the racy
//     load but does not synchronize anything.
var NakedSpin = &Analyzer{
	Name:   "naked-spin",
	Doc:    "flags busy-wait loops whose condition reads non-atomic memory the body never updates",
	Family: FamilySyntactic,
	Run:    runNakedSpin,
}

func runNakedSpin(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Cond != nil {
				checkSpinLoop(pass, loop, loop.Cond)
			} else if gate := breakGate(loop); gate != nil {
				checkSpinLoop(pass, loop, gate)
			}
			return true
		})
	}
}

// breakGate recognizes the cond-less spin shape: a body whose only exit is
// a single top-level `if cond { break }`. It returns that condition, or nil
// when the loop has any other structure.
func breakGate(loop *ast.ForStmt) ast.Expr {
	var gate ast.Expr
	for _, stmt := range loop.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || len(ifs.Body.List) != 1 {
			continue
		}
		br, ok := ifs.Body.List[0].(*ast.BranchStmt)
		if !ok || br.Tok != token.BREAK || br.Label != nil {
			continue
		}
		if gate != nil {
			return nil // more than one exit gate: not the simple spin shape
		}
		gate = ifs.Cond
	}
	return gate
}

func checkSpinLoop(pass *Pass, loop *ast.ForStmt, cond ast.Expr) {
	// The condition must read at least one variable and contain no channel
	// receive or unresolvable call. A call that resolves to a trivial
	// accessor (single return of plain memory) contributes the memory it
	// reads instead of disqualifying the loop.
	condVars := make(map[types.Object]bool)
	condClean := true
	ast.Inspect(cond, func(n ast.Node) bool {
		if !condClean {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !addAccessorReads(pass, loop.Pos(), n, condVars) {
				condClean = false
			}
			return false // accessor handled; don't rescan its arguments
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				condClean = false
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok {
				condVars[v] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				condVars[sel.Obj()] = true
			}
		}
		return condClean
	})
	if !condClean || len(condVars) == 0 {
		return
	}

	// The body (and the post statement) must contain nothing that could
	// make the condition change: no calls, channel ops, go/defer/select,
	// and no write to any variable or field the condition reads. The
	// break-gate itself (condition plus lone break) cannot make progress,
	// so inspecting the whole body stays correct for the cond-less shape.
	progress := false
	inspectBody := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr, *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt,
			*ast.SendStmt, *ast.ReturnStmt:
			progress = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				progress = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesCondVar(pass, lhs, condVars) {
					progress = true
				}
			}
		case *ast.IncDecStmt:
			if writesCondVar(pass, n.X, condVars) {
				progress = true
			}
		case *ast.RangeStmt:
			progress = true // ranging may receive from a channel
		}
		return !progress
	}
	ast.Inspect(loop.Body, inspectBody)
	if loop.Post != nil && !progress {
		ast.Inspect(loop.Post, inspectBody)
	}
	if progress {
		return
	}

	pass.ReportFixf(loop.Pos(), "wait on a Kit construct (Flag.Wait, Barrier.Wait) or an atomic load",
		"busy-wait: loop condition reads non-atomic memory that the loop body never updates (racy and may never terminate)")
}

// addAccessorReads resolves a zero-argument call in a spin condition. When
// the callee is a trivial accessor — a single `return expr` over plain
// variables and fields, no calls, no channel ops — its reads are added to
// condVars and true is returned: the loop is still a naked spin, just with
// the load hidden behind a method. Any other call (unresolvable, with
// arguments, or with a non-trivial body) returns false, disqualifying the
// loop: the callee might block or synchronize.
func addAccessorReads(pass *Pass, loopPos token.Pos, call *ast.CallExpr, condVars map[types.Object]bool) bool {
	if len(call.Args) != 0 {
		return false
	}
	fn := staticCallee(pass.Info, call)
	if fn == nil {
		// Method value bound to a local: `check := p.ready; for !check() {}`.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if encl := enclosingNode(pass, loopPos); encl != nil {
					if rhs, ok := encl.assigns()[obj]; ok {
						fn = refFunc(pass.Info, rhs)
					}
				}
			}
		}
	}
	node := pass.Graph.NodeOf(fn)
	if node == nil {
		return false
	}
	body := node.Body()
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	info := node.Pkg.Info
	plain := true
	ast.Inspect(ret.Results[0], func(n ast.Node) bool {
		if !plain {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			plain = false // an atomic Load or deeper indirection: not naked
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				plain = false
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok {
				condVars[v] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				condVars[sel.Obj()] = true
			}
		}
		return plain
	})
	return plain
}

// enclosingNode finds the innermost call-graph node of this package whose
// body contains pos.
func enclosingNode(pass *Pass, pos token.Pos) *CGNode {
	var best *CGNode
	consider := func(n *CGNode) {
		body := n.Body()
		if body == nil || pos < body.Pos() || pos >= body.End() {
			return
		}
		if best == nil || body.Pos() > best.Body().Pos() {
			best = n
		}
	}
	for _, n := range pass.Graph.Nodes {
		if n.Pkg.Path == pass.PkgPath {
			consider(n)
		}
	}
	for _, n := range pass.Graph.Lits {
		if n.Pkg.Path == pass.PkgPath {
			consider(n)
		}
	}
	return best
}

// writesCondVar reports whether the assignment target lhs denotes one of the
// variables or fields the loop condition reads.
func writesCondVar(pass *Pass, lhs ast.Expr, condVars map[types.Object]bool) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && condVars[obj] {
			return true
		}
		if obj := pass.Info.Defs[e]; obj != nil && condVars[obj] {
			return true
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && condVars[sel.Obj()] {
			return true
		}
	case *ast.StarExpr, *ast.IndexExpr:
		// Writing through a pointer or into an element could alias
		// anything the condition reads; treat it as progress.
		return true
	}
	return false
}
