package analysis

import (
	"go/ast"
	"go/types"
)

// NakedSpin flags busy-wait loops over plain memory: a for-condition that
// reads ordinary variables while the loop body performs no call, channel
// operation, or write to any variable the condition reads. Under the Go
// memory model such a loop is a data race that may never terminate (the
// compiler may hoist the load); the paper's lock-free constructs spin on
// atomics, which is what the Kit's Flag and Queue provide.
var NakedSpin = &Analyzer{
	Name: "naked-spin",
	Doc:  "flags busy-wait loops whose condition reads non-atomic memory the body never updates",
	Run:  runNakedSpin,
}

func runNakedSpin(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond == nil {
				return true
			}
			checkSpinLoop(pass, loop)
			return true
		})
	}
}

func checkSpinLoop(pass *Pass, loop *ast.ForStmt) {
	// The condition must read at least one variable and contain no call or
	// channel receive (those can legitimately make progress).
	condVars := make(map[types.Object]bool)
	condClean := true
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			condClean = false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				condClean = false
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok {
				condVars[v] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				condVars[sel.Obj()] = true
			}
		}
		return condClean
	})
	if !condClean || len(condVars) == 0 {
		return
	}

	// The body (and the post statement) must contain nothing that could
	// make the condition change: no calls, channel ops, go/defer/select,
	// and no write to any variable or field the condition reads.
	progress := false
	inspectBody := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr, *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt,
			*ast.SendStmt, *ast.ReturnStmt:
			progress = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				progress = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesCondVar(pass, lhs, condVars) {
					progress = true
				}
			}
		case *ast.IncDecStmt:
			if writesCondVar(pass, n.X, condVars) {
				progress = true
			}
		case *ast.RangeStmt:
			progress = true // ranging may receive from a channel
		}
		return !progress
	}
	ast.Inspect(loop.Body, inspectBody)
	if loop.Post != nil && !progress {
		ast.Inspect(loop.Post, inspectBody)
	}
	if progress {
		return
	}

	pass.ReportFixf(loop.Pos(), "wait on a Kit construct (Flag.Wait, Barrier.Wait) or an atomic load",
		"busy-wait: loop condition reads non-atomic memory that the loop body never updates (racy and may never terminate)")
}

// writesCondVar reports whether the assignment target lhs denotes one of the
// variables or fields the loop condition reads.
func writesCondVar(pass *Pass, lhs ast.Expr, condVars map[types.Object]bool) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && condVars[obj] {
			return true
		}
		if obj := pass.Info.Defs[e]; obj != nil && condVars[obj] {
			return true
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && condVars[sel.Obj()] {
			return true
		}
	case *ast.StarExpr, *ast.IndexExpr:
		// Writing through a pointer or into an element could alias
		// anything the condition reads; treat it as progress.
		return true
	}
	return false
}
