package analysis

import (
	"go/types"
	"strings"
)

// This file is the field-layout fact layer behind the atomic-layout
// analyzer: a small, self-contained struct layout calculator that mirrors
// the gc compiler's algorithm for the two shapes of target this suite cares
// about — 64-bit targets (the measurement platforms) and GOARCH=386 (the
// strictest mainstream target for 64-bit atomic alignment).
//
// It deliberately does not delegate struct layout to go/types.Sizes: the gc
// compiler guarantees 8-byte alignment for sync/atomic's align64-marked
// types (atomic.Int64, atomic.Uint64) even on 32-bit targets, a special
// case types.SizesFor("gc", "386") does not model. Encoding the rule here
// lets the analyzer distinguish "atomic.Int64 anywhere in a struct" (always
// safe) from "raw int64 handed to atomic.AddInt64" (safe only at offset 0).

// layoutArch parameterizes layout by target: word size drives pointer-sized
// types, maxAlign caps the alignment of the widest basic types (8 on 64-bit
// targets, 4 on 386, where int64 is only word-aligned).
type layoutArch struct {
	name     string
	wordSize int64
	maxAlign int64
}

var (
	arch64  = layoutArch{name: "amd64", wordSize: 8, maxAlign: 8}
	arch386 = layoutArch{name: "386", wordSize: 4, maxAlign: 4}
)

// cacheLineSize is the coherence granularity the false-sharing rules assume:
// 64 bytes on every x86 and most arm64 server parts.
const cacheLineSize = 64

// isAlign64 reports whether t is sync/atomic's align64 marker (or the
// runtime-internal twin): the zero-size field the compiler recognizes by
// name and rewards with guaranteed 8-byte alignment on every target.
func isAlign64(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "align64" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sync/atomic" || strings.HasSuffix(path, "internal/atomic")
}

// alignof returns the alignment of t under arch, in bytes.
func (a layoutArch) alignof(t types.Type) int64 {
	if isAlign64(t) {
		return 8
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		s := a.basicSize(u)
		if s > a.maxAlign {
			return a.maxAlign
		}
		if s < 1 {
			return 1
		}
		return s
	case *types.Struct:
		align := int64(1)
		for i := 0; i < u.NumFields(); i++ {
			if fa := a.alignof(u.Field(i).Type()); fa > align {
				align = fa
			}
		}
		return align
	case *types.Array:
		return a.alignof(u.Elem())
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return a.wordSize
	}
	return a.wordSize
}

// sizeof returns the size of t under arch, in bytes.
func (a layoutArch) sizeof(t types.Type) int64 {
	if isAlign64(t) {
		return 0
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return a.basicSize(u)
	case *types.Struct:
		return a.structLayout(u).size
	case *types.Array:
		// Struct and basic sizes are already multiples of their alignment,
		// so elements tile without extra padding.
		return u.Len() * a.sizeof(u.Elem())
	case *types.Slice:
		return 3 * a.wordSize
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return a.wordSize
	case *types.Interface:
		return 2 * a.wordSize
	}
	return a.wordSize
}

// basicSize returns the size of a basic type under arch.
func (a layoutArch) basicSize(b *types.Basic) int64 {
	switch b.Kind() {
	case types.Bool, types.Int8, types.Uint8:
		return 1
	case types.Int16, types.Uint16:
		return 2
	case types.Int32, types.Uint32, types.Float32:
		return 4
	case types.Int64, types.Uint64, types.Float64, types.Complex64:
		return 8
	case types.Complex128:
		return 16
	case types.String:
		return 2 * a.wordSize
	case types.UnsafePointer, types.Int, types.Uint, types.Uintptr:
		return a.wordSize
	}
	return a.wordSize
}

// fieldLayout is one field's placement inside its struct.
type fieldLayout struct {
	field  *types.Var
	offset int64
	size   int64
	align  int64
}

// structLayoutInfo is the computed layout of one struct type.
type structLayoutInfo struct {
	size   int64
	align  int64
	fields []fieldLayout
}

// line returns the cache line index a byte offset falls in.
func line(off int64) int64 { return off / cacheLineSize }

// structLayout lays out st the way the gc compiler does: fields in
// declaration order, each rounded up to its alignment, the total rounded up
// to the struct's alignment, with the trailing zero-size-field rule (a
// struct may not end exactly at a zero-size field, or a pointer to that
// field would point past the allocation).
func (a layoutArch) structLayout(st *types.Struct) structLayoutInfo {
	out := structLayoutInfo{align: 1}
	var off int64
	lastZero := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fa := a.alignof(f.Type())
		fs := a.sizeof(f.Type())
		if fa > out.align {
			out.align = fa
		}
		off = roundUp(off, fa)
		out.fields = append(out.fields, fieldLayout{field: f, offset: off, size: fs, align: fa})
		off += fs
		lastZero = fs == 0
	}
	if lastZero && off > 0 {
		off++
	}
	out.size = roundUp(off, out.align)
	return out
}

func roundUp(n, align int64) int64 {
	if align <= 1 {
		return n
	}
	return (n + align - 1) / align * align
}

// fieldHome locates the struct field f inside its declared struct layout,
// returning the layout and the index of f, or ok=false when f is not a
// field of st.
func (a layoutArch) fieldHome(st *types.Struct, f *types.Var) (structLayoutInfo, int, bool) {
	lay := a.structLayout(st)
	for i, fl := range lay.fields {
		if fl.field == f {
			return lay, i, true
		}
	}
	return lay, 0, false
}

// isPadField reports whether f is a blank padding field (the `_ [N]byte`
// idiom that declares cache-line isolation intent).
func isPadField(f *types.Var) bool {
	if f.Name() != "_" {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int8)
}
