package analysis

import (
	"encoding/json"
	"path/filepath"
)

// SARIF rendering of a diagnostic set: the minimal SARIF 2.1.0 subset CI
// annotators and editors consume — tool.driver.rules for the analyzer
// catalog, one result per diagnostic with a physical location. Kept as
// plain structs so encoding/json is the only dependency.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIF serializes diagnostics as a SARIF 2.1.0 log. The rules catalog
// lists every analyzer that ran (found something or not) so consumers can
// distinguish "clean" from "not checked". File URIs are made relative to
// root when possible.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rule := sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		}
		if full, err := Explain(a.Name); err == nil {
			rule.FullDescription = &sarifMessage{Text: full}
		}
		rules = append(rules, rule)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) {
				uri = rel
			}
		}
		msg := d.Message
		if d.Fix != "" {
			msg += " (fix: " + d.Fix + ")"
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "splash4-vet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
