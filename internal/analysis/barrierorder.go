package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
)

// BarrierOrder lifts barrier-mismatch to whole-workload phase reasoning: it
// walks the call graph from every core.Parallel worker entry, summarizes how
// many times each path waits on each barrier identity, and reports the
// places where those sequences can diverge across the goroutines of one
// worker group. With the suite's sense-free barriers a diverging phase count
// is not a crash — the late thread silently pairs with the wrong phase or
// blocks forever — so the defect has to be caught statically.
//
// A condition is "thread-varying" when its value can differ between
// goroutines of the group: anything derived from the tid parameter, from
// tid-indexed state, or from read-modify-write construct results
// (Counter.Inc tickets, Queue.TryGet). Values read uniformly from shared
// state between barriers are uniform by the phase protocol itself and do
// not count. Three shapes are reported:
//
//  1. an if whose arms wait different numbers of times, under a
//     thread-varying condition;
//  2. a barrier wait inside a loop whose trip count is thread-varying
//     (tid-dependent bounds, or exit gated on a varying condition);
//  3. an early return under a thread-varying condition that skips barrier
//     waits still ahead on the straight path.
var BarrierOrder = &Analyzer{
	Name: "barrier-order",
	Doc: "report barrier wait sequences that can diverge across the " +
		"goroutines of one core.Parallel group",
	Family: FamilyInterprocedural,
	Run:    runBarrierOrder,
}

func runBarrierOrder(pass *Pass) {
	for _, d := range barrierOrderModule(pass.Graph) {
		if pass.Owns(d.pos) {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

func barrierOrderModule(g *CallGraph) []posMsg {
	const memoKey = "barrierorder-findings"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]posMsg)
	}
	pc := parallelContext(g)
	sums := funcWaitSummaries(g)
	bo := &barrierOrderRun{g: g, pc: pc, sums: sums}

	var nodes []*parInfo
	for _, pi := range pc.info {
		nodes = append(nodes, pi)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].node.Body().Pos() < nodes[j].node.Body().Pos()
	})
	for _, pi := range nodes {
		bo.checkNode(pi)
	}
	sort.Slice(bo.out, func(i, j int) bool { return bo.out[i].pos < bo.out[j].pos })
	g.memo[memoKey] = bo.out
	return bo.out
}

type barrierOrderRun struct {
	g    *CallGraph
	pc   *parContext
	sums map[*CGNode]waitSummary
	out  []posMsg
}

func (bo *barrierOrderRun) report(pos token.Pos, format string, args ...any) {
	bo.out = append(bo.out, posMsg{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (bo *barrierOrderRun) shortPos(pos token.Pos) string {
	p := bo.g.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// checkNode applies the three divergence rules to one parallel-reachable
// function body.
func (bo *barrierOrderRun) checkNode(pi *parInfo) {
	body := pi.node.Body()
	// If the function never waits (directly or transitively) there is no
	// phase sequence to diverge.
	funcSum := bo.armWaits(pi, body)
	if funcSum.total() == 0 {
		return
	}
	waits, loops := bo.waitPositions(pi, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate node
		case *ast.IfStmt:
			bo.checkIf(pi, n, waits, loops)
		case *ast.ForStmt:
			varying := n.Cond != nil && bo.pc.exprClass(pi, n.Cond) >= clsTidPure
			if !varying && n.Cond == nil {
				varying = bo.hasVaryingBreak(pi, n.Body)
			}
			bo.checkLoop(pi, varying, span{n.Pos(), n.End()}, n.Body)
		case *ast.RangeStmt:
			varying := bo.pc.exprClass(pi, n.X) >= clsTidPure
			bo.checkLoop(pi, varying, span{n.Pos(), n.End()}, n.Body)
		}
		return true
	})
}

// checkIf handles rules 1 (arm wait counts differ) and 3 (early exit skips
// later waits) for one if statement with a thread-varying condition.
func (bo *barrierOrderRun) checkIf(pi *parInfo, n *ast.IfStmt, waits []token.Pos, loops []span) {
	if bo.pc.exprClass(pi, n.Cond) < clsTidPure {
		return
	}
	sumThen := bo.armWaits(pi, n.Body)
	sumElse := waitSummary{}
	if n.Else != nil {
		sumElse = bo.armWaits(pi, n.Else)
	}
	if !sumThen.equal(sumElse) {
		at := bo.firstWait(pi, n.Body)
		if !at.IsValid() {
			at = bo.firstWait(pi, n.Else)
		}
		if !at.IsValid() {
			at = n.Pos()
		}
		bo.report(at,
			"barrier wait under thread-varying condition (%s): goroutines taking different arms wait %d vs %d times and the group's phases diverge",
			bo.shortPos(n.Cond.Pos()), sumThen.total(), sumElse.total())
		return
	}
	// Arms wait equally; an early function exit in either arm still skips
	// whatever waits remain ahead.
	for _, arm := range []ast.Stmt{n.Body, n.Else} {
		if arm == nil {
			continue
		}
		ast.Inspect(arm, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				return false // nested loops judged by rule 2
			case *ast.ReturnStmt:
				if bo.waitsAfterExit(n.End(), m.Pos(), waits, loops) {
					bo.report(m.Pos(),
						"early return under thread-varying condition (%s) skips barrier waits still ahead: remaining goroutines block at the next wait",
						bo.shortPos(n.Cond.Pos()))
				}
			}
			return true
		})
	}
}

// checkLoop is rule 2: waits inside a loop whose trip count varies per
// goroutine.
func (bo *barrierOrderRun) checkLoop(pi *parInfo, varying bool, loop span, body *ast.BlockStmt) {
	if !varying {
		return
	}
	if at := bo.firstWait(pi, body); at.IsValid() {
		bo.report(at,
			"barrier wait inside a loop whose trip count is thread-varying (loop at %s): goroutines wait different numbers of times",
			bo.shortPos(loop.pos))
	}
}

// hasVaryingBreak reports whether a cond-less loop's exit is gated on a
// thread-varying condition: `for { if x, ok := q.TryPop(); !ok { break } }`.
func (bo *barrierOrderRun) hasVaryingBreak(pi *parInfo, body *ast.BlockStmt) bool {
	found := false
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			// Walk children manually so depth unwinds correctly.
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			depth--
			return false
		case *ast.IfStmt:
			if bo.pc.exprClass(pi, n.Cond) >= clsTidPure && containsBreak(n.Body) && depth == 0 {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(body, walk)
	return found
}

func containsBreak(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				has = true
			}
		}
		return !has
	})
	return has
}

// armWaits is the saturating wait summary of executing a subtree once:
// direct sync4.Barrier waits plus the transitive summaries of static
// callees, with anything under a nested loop counted as "many".
func (bo *barrierOrderRun) armWaits(pi *parInfo, n ast.Node) waitSummary {
	out := waitSummary{}
	if n == nil {
		return out
	}
	info := pi.node.Pkg.Info
	var walk func(m ast.Node, times int) bool
	walk = func(m ast.Node, times int) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			ast.Inspect(m, func(k ast.Node) bool {
				if k == m {
					return true
				}
				return walk(k, manyWaits)
			})
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(m.Args) == 0 {
				if tv, ok := info.Types[sel.X]; ok && isSync4Barrier(tv.Type) {
					root, _ := rootObject(info, pi.node.assigns(), sel.X, 0)
					out.add(root, times)
					return true
				}
			}
			if callee := staticCallee(info, m); callee != nil {
				if sum, ok := bo.sums[bo.g.NodeOf(callee)]; ok {
					out.merge(sum, times)
				}
			}
		}
		return true
	}
	ast.Inspect(n, func(m ast.Node) bool { return walk(m, 1) })
	return out
}

// firstWait returns the position of the first direct or transitive wait in
// a subtree, or NoPos.
func (bo *barrierOrderRun) firstWait(pi *parInfo, n ast.Node) token.Pos {
	if n == nil {
		return token.NoPos
	}
	info := pi.node.Pkg.Info
	at := token.NoPos
	ast.Inspect(n, func(m ast.Node) bool {
		if at.IsValid() {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(m.Args) == 0 {
				if tv, ok := info.Types[sel.X]; ok && isSync4Barrier(tv.Type) {
					at = m.Pos()
					return false
				}
			}
			if callee := staticCallee(info, m); callee != nil {
				if sum, ok := bo.sums[bo.g.NodeOf(callee)]; ok && sum.total() > 0 {
					at = m.Pos()
					return false
				}
			}
		}
		return true
	})
	return at
}

// waitPositions records every wait-relevant position in the body (direct
// waits and calls into waiting callees) together with the spans of all
// loops, for the waits-still-ahead test.
func (bo *barrierOrderRun) waitPositions(pi *parInfo, body *ast.BlockStmt) ([]token.Pos, []span) {
	info := pi.node.Pkg.Info
	var waits []token.Pos
	var loops []span
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, span{m.Pos(), m.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{m.Pos(), m.End()})
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(m.Args) == 0 {
				if tv, ok := info.Types[sel.X]; ok && isSync4Barrier(tv.Type) {
					waits = append(waits, m.Pos())
					return true
				}
			}
			if callee := staticCallee(info, m); callee != nil {
				if sum, ok := bo.sums[bo.g.NodeOf(callee)]; ok && sum.total() > 0 {
					waits = append(waits, m.Pos())
				}
			}
		}
		return true
	})
	return waits, loops
}

// waitsAfterExit reports whether a function exit at exitPos (inside a
// construct ending at stmtEnd) skips waits other goroutines still perform:
// any wait after the construct, or any wait sharing an enclosing loop with
// the exit (the next iteration's waits).
func (bo *barrierOrderRun) waitsAfterExit(stmtEnd, exitPos token.Pos, waits []token.Pos, loops []span) bool {
	for _, w := range waits {
		if w > stmtEnd {
			return true
		}
		for _, l := range loops {
			if l.contains(exitPos) && l.contains(w) {
				return true
			}
		}
	}
	return false
}
