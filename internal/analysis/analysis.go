// Package analysis is splash4-vet: a static analyzer for the concurrency
// invariants this repository's classic-vs-lockfree comparison depends on.
//
// The Splash-4 methodology is only sound if every workload synchronizes
// exclusively through the sync4.Kit abstraction: a raw sync.Mutex, a bare
// atomic, a copied construct or a busy-wait on plain memory silently turns
// the "same workload, two kits" comparison into two different workloads (or
// into a data race, which is how Splash-2 shipped broken benchmarks for two
// decades). The analyzers in this package encode those invariants and run
// over the module's own source using only the standard library's go/ast and
// go/types — the module stays dependency-free.
//
// PR 1's analyzers are intraprocedural. The interprocedural layer — a
// module-wide call graph (callgraph.go), a per-function IR of shared-memory
// operations (ir.go), and the parallel-reachability context (parallel.go) —
// powers the verifier checks: guarded-by, barrier-order, and cas-shape.
//
// Diagnostics can be suppressed, with a mandatory justification, by placing
//
//	//lint:ignore sync4vet-<analyzer> reason...
//
// on the flagged line or on the line directly above it. A directive that
// silences nothing is itself flagged by unused-suppression.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position // file:line:col of the offending node
	Analyzer string         // analyzer name, e.g. "kit-bypass"
	Message  string         // what is wrong
	Fix      string         // suggested fix, may be empty
}

// String formats the diagnostic in the familiar file:line:col style.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	if d.Fix != "" {
		s += fmt.Sprintf(" (fix: %s)", d.Fix)
	}
	return s
}

// Analyzer is one check. Run inspects a type-checked package through the
// Pass and reports findings via Pass.Report.
type Analyzer struct {
	Name   string // short kebab-case identifier used in output and suppressions
	Doc    string // one-line description for -list output
	Family string // analyzer family, used to group -list output
	Run    func(*Pass)
}

// Analyzer families, in the order -list presents them.
const (
	FamilySyntactic       = "syntactic"       // single-file shape checks (PR 1)
	FamilyInterprocedural = "interprocedural" // call-graph dataflow verifiers (PR 4)
	FamilyPerformance     = "performance"     // allocation and memory-layout contracts (PR 6)
	FamilyConformance     = "conformance"     // requirement tagging and coverage (PR 9)
	FamilyMeta            = "meta"            // checks about the checks
)

// Families lists the analyzer families in presentation order.
func Families() []string {
	return []string{FamilySyntactic, FamilyInterprocedural, FamilyPerformance, FamilyConformance, FamilyMeta}
}

// Pass gives one analyzer a view of one package and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string // import path inside the module, e.g. "repro/internal/fft"

	// Graph is the call graph over every package of this run. Module-wide
	// analyzers compute their findings once (memoized on the graph) and
	// each package's pass claims the findings its files own.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Owns reports whether pos falls in one of this pass's files — the claim
// test for module-wide analyses.
func (p *Pass) Owns(pos token.Pos) bool {
	owner := p.Graph.OwnerOf(pos)
	return owner != nil && owner.Path == p.PkgPath
}

// Reportf records a diagnostic at pos with no suggested fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, "", format, args...)
}

// ReportFixf records a diagnostic at pos carrying a suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// UnusedSuppression flags lint:ignore directives that silence nothing. It
// has no Run of its own: RunAnalyzers' suppression bookkeeping produces the
// findings after every other analyzer has had its chance to be suppressed.
var UnusedSuppression = &Analyzer{
	Name:   "unused-suppression",
	Doc:    "flag //lint:ignore sync4vet-* directives that suppress nothing",
	Family: FamilyMeta,
	Run:    func(*Pass) {},
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		KitBypass,
		ConstructCopy,
		BarrierMismatch,
		NakedSpin,
		ErrcheckLite,
		GuardedBy,
		BarrierOrder,
		CASShape,
		ZeroAlloc,
		AtomicLayout,
		PlainAtomicMix,
		ReqCoverage,
		ReqUntagged,
		ReqStale,
		UnusedSuppression,
	}
}

// ByName resolves a comma-free analyzer name, or returns an error naming the
// valid choices.
func ByName(name string) (*Analyzer, error) {
	var names []string
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, nil
		}
		names = append(names, a.Name)
	}
	return nil, fmt.Errorf("unknown analyzer %q (valid: %v)", name, names)
}

// RunAnalyzers executes each analyzer over each package and returns the
// surviving (unsuppressed) diagnostics sorted by position, plus the count of
// findings that were silenced by //lint:ignore comments. One call graph is
// built over the whole package set so interprocedural analyzers see edges
// that cross package boundaries.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) (diags []Diagnostic, suppressed int) {
	graph := BuildCallGraph(pkgs)
	// The conformance analyzers report at positions inside _test.go files,
	// which the loader does not type-check. Building the overlay up front
	// registers those files' ownership (so Pass.Owns claims the findings)
	// and exposes their lint:ignore directives to the suppression scan.
	overlay := overlayOf(graph)
	ran := make(map[string]bool, len(analyzers))
	judgeUnused := false
	for _, a := range analyzers {
		ran[a.Name] = true
		if a == UnusedSuppression {
			judgeUnused = true
		}
	}
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				Graph:    graph,
				diags:    &raw,
			}
			a.Run(pass)
		}
		files := pkg.Files
		if tf := overlay.filesForDir(pkg.Dir); len(tf) > 0 {
			files = append(append([]*ast.File{}, files...), tf...)
		}
		sup := suppressions(pkg.Fset, files)
		for _, d := range raw {
			if sup.covers(d) {
				suppressed++
				continue
			}
			diags = append(diags, d)
		}
		if judgeUnused {
			for _, d := range sup.unused(ran) {
				if sup.covers(d) {
					suppressed++
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, suppressed
}
