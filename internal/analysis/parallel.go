package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the shared interprocedural context the guarded-by and
// barrier-order analyzers consume: which functions run inside a
// core.Parallel worker group, what locks are provably held on entry to each
// (inherited from call sites), whether a function is only ever reached from
// single-thread sections (`if tid == 0`-style gates), and how values derive
// from the worker's thread id.

// valClass classifies how a value can differ between the goroutines of one
// Parallel group.
type valClass uint8

const (
	// clsUniform: every goroutine computes the same value — constants,
	// configuration, shared state read between barriers (uniform by the
	// phase protocol the barrier-order analyzer enforces).
	clsUniform valClass = iota
	// clsTidPure: a deterministic function of the thread id and uniform
	// values (tid itself, BlockRange bounds). Comparing one against a
	// uniform value gates exactly one thread.
	clsTidPure
	// clsData: everything else that varies per goroutine — values read
	// through tid-dependent indices, results of fetch-and-add or
	// try-dequeue operations, channel receives.
	clsData
)

func maxClass(a, b valClass) valClass {
	if a > b {
		return a
	}
	return b
}

// span is a half-open source range.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.pos && p < s.end }

// parInfo is the interprocedural context of one parallel-reachable function.
type parInfo struct {
	node *CGNode

	// entryLocks is the intersection, over every parallel call site, of
	// the locks held at the site plus the caller's own entry locks. nil
	// means "not yet constrained" (top).
	entryLocks lockset
	// exempt is true while every parallel path to this function runs it
	// on a single thread (all call sites sit inside tid-gates).
	exempt bool

	// cls classifies the function's parameters and locals.
	cls map[types.Object]valClass
	// gated lists the single-thread spans of the body: then-branches of
	// `tid == k`-shaped conditions.
	gated []span
}

func (pi *parInfo) classOf(obj types.Object) valClass {
	if obj == nil {
		return clsUniform
	}
	return pi.cls[obj]
}

func (pi *parInfo) posGated(p token.Pos) bool {
	for _, s := range pi.gated {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// parContext is the fixpoint result over the whole graph.
type parContext struct {
	g    *CallGraph
	info map[*CGNode]*parInfo
}

// parallelContext computes (and memoizes on the graph) the parallel
// reachability context for every function reachable from a Parallel entry.
func parallelContext(g *CallGraph) *parContext {
	const memoKey = "parallel-context"
	if v, ok := g.memo[memoKey]; ok {
		return v.(*parContext)
	}
	pc := &parContext{g: g, info: make(map[*CGNode]*parInfo)}
	pc.solve()
	g.memo[memoKey] = pc
	return pc
}

// ensure returns (creating if needed) the info record for node.
func (pc *parContext) ensure(node *CGNode) (*parInfo, bool) {
	if pi, ok := pc.info[node]; ok {
		return pi, false
	}
	pi := &parInfo{node: node, exempt: true, cls: make(map[types.Object]valClass)}
	pc.info[node] = pi
	return pi, true
}

// solve seeds every Parallel entry and propagates contexts along static
// call edges until nothing changes. All three propagated facts move
// monotonically (locksets only shrink, exemption only decays, classes only
// rise), so the fixpoint terminates.
func (pc *parContext) solve() {
	work := make(map[*CGNode]bool)
	for _, site := range pc.g.ParallelEntries() {
		if site.Entry == nil {
			continue
		}
		pi, _ := pc.ensure(site.Entry)
		pi.exempt = false
		pi.entryLocks = lockset{}
		if sig := site.Entry.Sig(); sig != nil && sig.Params().Len() >= 1 {
			if pi.cls[sig.Params().At(0)] < clsTidPure {
				pi.cls[sig.Params().At(0)] = clsTidPure
			}
		}
		work[site.Entry] = true
	}
	for round := 0; len(work) > 0 && round < 64; round++ {
		next := make(map[*CGNode]bool)
		for node := range work {
			if pc.analyze(node, next) {
				// re-run the node itself when its own entry state moved
				next[node] = true
			}
		}
		work = next
	}
}

// analyze recomputes node's local facts under its current entry assumptions
// and pushes contexts to its callees, scheduling any callee whose state
// changed. It returns true when node's own classification changed (so
// dependents re-run).
func (pc *parContext) analyze(node *CGNode, schedule map[*CGNode]bool) bool {
	pi := pc.info[node]
	changed := pc.classify(pi)
	pc.findGates(pi)

	ir := node.IR()
	entry := pi.entryLocks
	if entry == nil {
		entry = lockset{}
	}
	ir.ForEachOpWithLockset(entry, func(op *Op, held lockset) {
		if op.Kind != OpCall && op.Kind != OpCAS {
			return
		}
		callee := pc.g.NodeOf(op.Callee)
		if callee == nil {
			return
		}
		siteLocks := held
		if op.Go {
			siteLocks = lockset{} // a spawned goroutine holds nothing
		}
		siteExempt := !op.Go && (pi.exempt || pi.posGated(op.Pos))
		if pc.flowInto(callee, siteLocks, siteExempt, pc.argClasses(pi, op.Call)) {
			schedule[callee] = true
		}
	})
	// Function literals defined inside a parallel function may run on this
	// goroutine; propagate reachability and classes (but no lock context —
	// where they are invoked is unknown).
	for _, lit := range node.Lits {
		if pc.flowInto(lit, lockset{}, pi.exempt, nil) {
			schedule[lit] = true
		}
	}
	return changed
}

// flowInto merges one call-site context into the callee and reports whether
// the callee's entry state changed.
func (pc *parContext) flowInto(callee *CGNode, siteLocks lockset, siteExempt bool, argCls []valClass) bool {
	pi, fresh := pc.ensure(callee)
	changed := fresh
	if pi.entryLocks == nil {
		pi.entryLocks = siteLocks.clone()
		changed = true
	} else {
		merged := pi.entryLocks.intersect(siteLocks)
		if !merged.equal(pi.entryLocks) {
			pi.entryLocks = merged
			changed = true
		}
	}
	if pi.exempt && !siteExempt {
		pi.exempt = false
		changed = true
	}
	if sig := callee.Sig(); sig != nil {
		for i := 0; i < sig.Params().Len() && i < len(argCls); i++ {
			p := sig.Params().At(i)
			if argCls[i] > pi.cls[p] {
				pi.cls[p] = argCls[i]
				changed = true
			}
		}
	}
	return changed
}

// argClasses evaluates the classes of a call's arguments in the caller.
func (pc *parContext) argClasses(pi *parInfo, call *ast.CallExpr) []valClass {
	if call == nil {
		return nil
	}
	out := make([]valClass, len(call.Args))
	for i, a := range call.Args {
		out[i] = pc.exprClass(pi, a)
	}
	return out
}

// classify iterates the function's assignments until local classes
// stabilize. Returns whether anything rose this call.
func (pc *parContext) classify(pi *parInfo) bool {
	info := pi.node.Pkg.Info
	changedEver := false
	raise := func(id *ast.Ident, c valClass) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || c <= pi.cls[obj] {
			return
		}
		pi.cls[obj] = c
		changedEver = true
	}
	for iter := 0; iter < 8; iter++ {
		before := changedEver
		changedEver = false
		ast.Inspect(pi.node.Body(), func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							raise(id, pc.exprClass(pi, n.Rhs[i]))
						}
					}
				} else if len(n.Rhs) == 1 {
					c := pc.exprClass(pi, n.Rhs[0])
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							raise(id, c)
						}
					}
				}
			case *ast.RangeStmt:
				c := pc.exprClass(pi, n.X)
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						c = clsData
					}
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						raise(id, c)
					}
				}
			}
			return true
		})
		if !changedEver {
			changedEver = before
			break
		}
		changedEver = true
	}
	return changedEver
}

// exprClass evaluates how expr varies across the goroutines of a Parallel
// group, given the classes inferred so far.
func (pc *parContext) exprClass(pi *parInfo, expr ast.Expr) valClass {
	info := pi.node.Pkg.Info
	switch e := ast.Unparen(expr).(type) {
	case nil:
		return clsUniform
	case *ast.BasicLit, *ast.FuncLit:
		return clsUniform
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if _, isConst := obj.(*types.Const); isConst {
			return clsUniform
		}
		return pi.classOf(obj)
	case *ast.BinaryExpr:
		return maxClass(pc.exprClass(pi, e.X), pc.exprClass(pi, e.Y))
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return clsData // channel receive: ordering races
		}
		return pc.exprClass(pi, e.X)
	case *ast.StarExpr:
		return pc.exprClass(pi, e.X)
	case *ast.SelectorExpr:
		// A field read inherits its base's class: shared state read with a
		// uniform base is uniform by the phase protocol.
		return pc.exprClass(pi, e.X)
	case *ast.IndexExpr:
		idx := pc.exprClass(pi, e.Index)
		if idx >= clsTidPure {
			// Element selected by a thread-dependent index: the values
			// differ per thread in a data-dependent way.
			return clsData
		}
		return pc.exprClass(pi, e.X)
	case *ast.SliceExpr:
		c := pc.exprClass(pi, e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				c = maxClass(c, pc.exprClass(pi, b))
			}
		}
		return c
	case *ast.CallExpr:
		if isRMWCall(info, e) {
			return clsData
		}
		c := clsUniform
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			c = pc.exprClass(pi, sel.X)
		}
		for _, a := range e.Args {
			c = maxClass(c, pc.exprClass(pi, a))
		}
		return c
	case *ast.TypeAssertExpr:
		return pc.exprClass(pi, e.X)
	case *ast.CompositeLit:
		c := clsUniform
		for _, el := range e.Elts {
			c = maxClass(c, pc.exprClass(pi, el))
		}
		return c
	}
	return clsData // unknown shape: be conservative
}

// rmwNames are the construct methods whose results genuinely differ per
// calling goroutine: fetch-and-add tickets and try-dequeue results.
var rmwNames = map[string]bool{
	"Inc": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"TryGet": true, "TryPop": true, "TryPut": true,
}

// isRMWCall reports whether call is a read-modify-write operation on a
// sync4 construct or a sync/atomic value.
func isRMWCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !rmwNames[sel.Sel.Name] {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	path := typePkgPath(tv.Type)
	return strings.HasSuffix(path, "internal/sync4") || path == "sync/atomic"
}

// typePkgPath returns the defining package path of a (possibly pointed-to)
// named type, or "".
func typePkgPath(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			if tt.Obj().Pkg() != nil {
				return tt.Obj().Pkg().Path()
			}
			return ""
		default:
			return ""
		}
	}
}

// findGates records the single-thread spans of pi's body: then-branches of
// conditions containing a `tidpure == uniform` comparison.
func (pc *parContext) findGates(pi *parInfo) {
	pi.gated = pi.gated[:0]
	ast.Inspect(pi.node.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if pc.isTidGate(pi, ifs.Cond) {
			pi.gated = append(pi.gated, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
}

// isTidGate reports whether cond contains an equality comparison between a
// tid-pure expression and a uniform one — a condition exactly one thread of
// the group satisfies (`tid == 0`, `in.owner(k) == tid`).
func (pc *parContext) isTidGate(pi *parInfo, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL || found {
			return !found
		}
		x, y := pc.exprClass(pi, be.X), pc.exprClass(pi, be.Y)
		if (x == clsTidPure && y == clsUniform) || (x == clsUniform && y == clsTidPure) {
			found = true
		}
		return !found
	})
	return found
}

// waitSummary is the saturating per-barrier wait count of executing a code
// region once: 0, 1, or many (2).
type waitSummary map[types.Object]int

const manyWaits = 2

func (w waitSummary) add(obj types.Object, n int) {
	if w[obj]+n > manyWaits {
		w[obj] = manyWaits
	} else {
		w[obj] += n
	}
}

func (w waitSummary) merge(o waitSummary, times int) {
	for k, v := range o {
		w.add(k, v*times)
	}
}

func (w waitSummary) equal(o waitSummary) bool {
	if len(w) != len(o) {
		return false
	}
	for k, v := range w {
		if o[k] != v {
			return false
		}
	}
	return true
}

func (w waitSummary) total() int {
	t := 0
	for _, v := range w {
		t += v
	}
	return t
}

// funcWaits computes (memoized) the transitive barrier-wait summary of every
// node: how many times one call of the function waits on each barrier
// identity. Calls through dynamic dispatch contribute nothing; goroutine
// spawns contribute nothing to the spawning thread's sequence.
func funcWaitSummaries(g *CallGraph) map[*CGNode]waitSummary {
	const memoKey = "func-waits"
	if v, ok := g.memo[memoKey]; ok {
		return v.(map[*CGNode]waitSummary)
	}
	sums := make(map[*CGNode]waitSummary)
	all := make([]*CGNode, 0, len(g.Nodes)+len(g.Lits))
	for _, n := range g.Nodes {
		all = append(all, n)
	}
	for _, n := range g.Lits {
		all = append(all, n)
	}
	for _, n := range all {
		sums[n] = waitSummary{}
	}
	// Saturating counts over a finite lattice: a few rounds reach fixpoint
	// even with recursion.
	for round := 0; round < 4; round++ {
		changed := false
		for _, n := range all {
			next := directWaits(g, n, sums)
			if !next.equal(sums[n]) {
				sums[n] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.memo[memoKey] = sums
	return sums
}

// directWaits folds n's own wait ops and its static callees' current
// summaries, counting anything under a loop as "many".
func directWaits(g *CallGraph, n *CGNode, sums map[*CGNode]waitSummary) waitSummary {
	out := waitSummary{}
	ir := n.IR()
	inLoop := loopBlocks(ir)
	for _, blk := range ir.Blocks {
		times := 1
		if inLoop[blk] {
			times = manyWaits
		}
		for i := range blk.Ops {
			op := &blk.Ops[i]
			switch op.Kind {
			case OpWait:
				out.add(op.Obj, times)
			case OpCall:
				if op.Go {
					continue
				}
				if callee, ok := sums[g.NodeOf(op.Callee)]; ok {
					out.merge(callee, times)
				}
			}
		}
	}
	return out
}

// loopBlocks returns the set of blocks that sit on a cycle (therefore may
// execute more than once per call).
func loopBlocks(ir *FuncIR) map[*Block]bool {
	// A block is on a cycle iff it can reach itself. With the small CFGs
	// here, a DFS per block is affordable and simple.
	reach := func(from, to *Block) bool {
		seen := map[*Block]bool{}
		stack := []*Block{from}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range b.Succs {
				if s == to {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}
	out := make(map[*Block]bool)
	for _, b := range ir.Blocks {
		if reach(b, b) {
			out[b] = true
		}
	}
	return out
}
