package analysis

import (
	"go/types"
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/analysis/layoutshapes"
)

// shapeTypes pairs every declared shape with its compiled runtime type.
var shapeTypes = map[string]reflect.Type{
	"Inner":        reflect.TypeOf(layoutshapes.Inner{}),
	"Embedded":     reflect.TypeOf(layoutshapes.Embedded{}),
	"WithArray":    reflect.TypeOf(layoutshapes.WithArray{}),
	"Padded":       reflect.TypeOf(layoutshapes.Padded{}),
	"Small386":     reflect.TypeOf(layoutshapes.Small386{}),
	"Mixed":        reflect.TypeOf(layoutshapes.Mixed{}),
	"TrailingZero": reflect.TypeOf(layoutshapes.TrailingZero{}),
}

func loadShapeStructs(t *testing.T) map[string]*types.Struct {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("layoutshapes", "repro/internal/analysis/layoutshapes")
	if err != nil {
		t.Fatalf("load layoutshapes: %v", err)
	}
	out := make(map[string]*types.Struct)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			out[name] = st
		}
	}
	return out
}

// TestLayoutMatchesRuntime is the property test behind the atomic-layout
// calculator: for every declared shape, the amd64 model's field offsets,
// total size, and alignment must equal what the compiler actually did —
// observed through reflect, which reads the same data unsafe.Offsetof sees.
func TestLayoutMatchesRuntime(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 || unsafe.Alignof(uint64(0)) != 8 {
		t.Skipf("host is not an 8-byte-word/8-byte-align target; the amd64 model cannot be compared against it")
	}
	structs := loadShapeStructs(t)
	if len(structs) != len(shapeTypes) {
		t.Fatalf("loaded %d shape structs, want %d", len(structs), len(shapeTypes))
	}
	for name, st := range structs {
		rt, ok := shapeTypes[name]
		if !ok {
			t.Errorf("shape %s has no runtime twin registered", name)
			continue
		}
		lay := arch64.structLayout(st)
		if len(lay.fields) != rt.NumField() {
			t.Errorf("%s: model has %d fields, runtime has %d", name, len(lay.fields), rt.NumField())
			continue
		}
		for i, f := range lay.fields {
			rf := rt.Field(i)
			if f.field.Name() != rf.Name {
				t.Errorf("%s field %d: model %s vs runtime %s", name, i, f.field.Name(), rf.Name)
			}
			if f.offset != int64(rf.Offset) {
				t.Errorf("%s.%s: model offset %d, unsafe.Offsetof %d", name, rf.Name, f.offset, rf.Offset)
			}
		}
		if got, want := arch64.sizeof(st), int64(rt.Size()); got != want {
			t.Errorf("%s: model size %d, unsafe.Sizeof %d", name, got, want)
		}
		if got, want := arch64.alignof(st), int64(rt.Align()); got != want {
			t.Errorf("%s: model align %d, unsafe.Alignof %d", name, got, want)
		}
	}
}

// TestLayout386Model pins the GOARCH=386 rules the host cannot execute:
// int64 is only word-aligned (the hazard the align64 rule exists for),
// while sync/atomic's typed values stay 8-byte aligned everywhere.
func TestLayout386Model(t *testing.T) {
	structs := loadShapeStructs(t)

	small := structs["Small386"]
	lay := arch386.structLayout(small)
	if got := lay.fields[1].offset; got != 4 {
		t.Errorf("Small386.B at 386 offset %d, want 4 (int64 aligns to the 4-byte word)", got)
	}
	if got := arch386.sizeof(small); got != 12 {
		t.Errorf("Small386 386 size %d, want 12", got)
	}

	padded := structs["Padded"]
	hot := padded.Field(0).Type()
	if got := arch386.alignof(hot); got != 8 {
		t.Errorf("atomic.Int64 386 alignment %d, want 8 (the align64 guarantee)", got)
	}
	if got := arch386.structLayout(padded).fields[0].offset; got != 0 {
		t.Errorf("Padded.Hot at 386 offset %d, want 0", got)
	}
	if got := arch386.sizeof(padded); got != 64 {
		t.Errorf("Padded 386 size %d, want 64", got)
	}

	// Embedded: Inner{byte,int32} is 8 bytes; C needs only 4-byte alignment
	// on 386, so it lands at 8 and the struct stays 16.
	emb := structs["Embedded"]
	if got := arch386.structLayout(emb).fields[1].offset; got != 8 {
		t.Errorf("Embedded.C at 386 offset %d, want 8", got)
	}
}
