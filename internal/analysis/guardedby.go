package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardedBy infers, per shared struct field, the lock discipline the code
// itself establishes — the set of Kit.NewLock lockers held at every write
// the function acquires itself — and flags writes reachable from a
// core.Parallel worker body that escape every inferred guard. It is an
// Eraser-style lockset race detector specialized to the sync4 discipline:
//
//   - Guards are inferred only from sites whose critical section is opened
//     in the same function (a caller-held lock proves nothing about which
//     lock the field is *supposed* to be under).
//   - Checking uses both the local lockset and the locks inherited from
//     every parallel call site (intersected across sites), so helper
//     functions called with the lock held stay silent.
//   - Only writes are flagged. The suite's phase discipline publishes data
//     with barriers and reads it unguarded in later phases; flagging reads
//     would bury the signal in protocol-correct noise.
//   - Writes under a single-thread gate (`if tid == 0`, owner-equality
//     checks) are exempt: one goroutine needs no lock.
//   - Element writes (x.f[i] = v) are exempt: threads partition arrays by
//     design, and per-element disjointness is beyond a lockset analysis.
var GuardedBy = &Analyzer{
	Name: "guarded-by",
	Doc: "flag writes to lock-guarded shared fields that escape the " +
		"inferred guard on paths reachable from core.Parallel workers",
	Family: FamilyInterprocedural,
	Run:    runGuardedBy,
}

// writeSite is one field write observed in parallel-reachable code.
type writeSite struct {
	field     types.Object
	pos       token.Pos
	localHeld lockset // locks this function acquired itself
	fullHeld  lockset // localHeld plus locks inherited from call sites
	exempt    bool    // single-thread gated, or whole function is
}

func runGuardedBy(pass *Pass) {
	for _, d := range guardedByModule(pass.Graph) {
		if pass.Owns(d.pos) {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

type posMsg struct {
	pos token.Pos
	msg string
}

// guardedByModule runs the module-wide analysis once per graph and memoizes
// the raw findings; each package's pass then claims the ones in its files.
func guardedByModule(g *CallGraph) []posMsg {
	const memoKey = "guardedby-findings"
	if v, ok := g.memo[memoKey]; ok {
		return v.([]posMsg)
	}
	pc := parallelContext(g)

	var sites []writeSite
	for _, pi := range pc.info {
		sites = append(sites, collectWrites(pi)...)
	}

	// Guard inference: a field's guard is the intersection of the locally
	// acquired locksets over every write that holds at least one lock it
	// acquired itself. Fields never written under a same-function lock have
	// no inferred guard and are not checked (they are protocol-guarded by
	// barriers, or construct-mediated, or broken in ways a lockset cannot
	// see).
	guards := make(map[types.Object]lockset)
	for _, s := range sites {
		if len(s.localHeld) == 0 {
			continue
		}
		if cur, ok := guards[s.field]; ok {
			guards[s.field] = cur.intersect(s.localHeld)
		} else {
			guards[s.field] = s.localHeld.clone()
		}
	}

	var out []posMsg
	for _, s := range sites {
		guard := guards[s.field]
		if len(guard) == 0 || s.exempt {
			continue
		}
		if holdsAny(s.fullHeld, guard) {
			continue
		}
		out = append(out, posMsg{
			pos: s.pos,
			msg: fmt.Sprintf(
				"write to shared field %q escapes its inferred guard %s: other parallel writes hold the lock, this path holds none of it",
				s.field.Name(), guardNames(guard)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	g.memo[memoKey] = out
	return out
}

// collectWrites walks one parallel-reachable function twice — once with an
// empty entry lockset (locks it acquires itself) and once seeded with the
// locks inherited from its parallel call sites — and pairs the two views
// per write.
func collectWrites(pi *parInfo) []writeSite {
	ir := pi.node.IR()
	local := make(map[token.Pos]lockset)
	ir.ForEachOpWithLockset(lockset{}, func(op *Op, held lockset) {
		if op.Kind == OpWrite && !op.Elem && isSharedField(op.Obj) {
			local[op.Pos] = held.clone()
		}
	})
	entry := pi.entryLocks
	if entry == nil {
		entry = lockset{}
	}
	var sites []writeSite
	ir.ForEachOpWithLockset(entry, func(op *Op, held lockset) {
		if op.Kind != OpWrite || op.Elem || !isSharedField(op.Obj) {
			return
		}
		sites = append(sites, writeSite{
			field:     op.Obj,
			pos:       op.Pos,
			localHeld: local[op.Pos],
			fullHeld:  held.clone(),
			exempt:    pi.exempt || pi.posGated(op.Pos),
		})
	})
	return sites
}

// isSharedField keeps the analysis on struct fields (the unit the guard
// discipline is declared over).
func isSharedField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

func holdsAny(held, guard lockset) bool {
	for l := range held {
		if guard[l] {
			return true
		}
	}
	return false
}

func guardNames(guard lockset) string {
	names := make([]string, 0, len(guard))
	for l := range guard {
		names = append(names, l.Name())
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}
