package dessim

import (
	"time"

	"repro/internal/sync4"
)

// This file synthesizes canonical workload traces. The generators mirror
// the suite's dominant parallel shapes; FromSnapshot assembles them from a
// real run's synchronization census so a measured workload can be replayed
// on a modeled machine.

// PhasedTrace builds the barrier-phased shape of OCEAN/FFT/LU: episodes of
// per-thread compute separated by a global barrier, with rmwPerPhase
// updates of a shared reduction cell folded in per thread and phase.
// computePerPhase is each thread's compute time per phase. Skew adds a
// linearly growing imbalance: thread t computes (1 + skew*t/threads) times
// the base amount, which is how stragglers stress a barrier.
func PhasedTrace(threads, phases int, computePerPhase time.Duration, rmwPerPhase int, skew float64) Trace {
	tr := make(Trace, threads)
	for t := 0; t < threads; t++ {
		factor := 1 + skew*float64(t)/float64(threads)
		dur := time.Duration(float64(computePerPhase) * factor)
		var evs []Event
		for p := 0; p < phases; p++ {
			evs = append(evs, Event{Kind: Compute, Dur: dur})
			for r := 0; r < rmwPerPhase; r++ {
				evs = append(evs, Event{Kind: RMW, Obj: 0})
			}
			evs = append(evs, Event{Kind: Barrier, Obj: 0})
		}
		tr[t] = evs
	}
	return tr
}

// TaskLoopTrace builds the dynamic-task shape of RAYTRACE/VOLREND: each
// task is one ticket from a shared counter followed by compute. Tasks are
// dealt round-robin, approximating the self-balancing loop.
func TaskLoopTrace(threads, tasks int, computePerTask time.Duration) Trace {
	tr := make(Trace, threads)
	for task := 0; task < tasks; task++ {
		t := task % threads
		tr[t] = append(tr[t],
			Event{Kind: RMW, Obj: 0},
			Event{Kind: Compute, Dur: computePerTask})
	}
	for t := 0; t < threads; t++ {
		tr[t] = append(tr[t], Event{Kind: Barrier, Obj: 0})
	}
	return tr
}

// MergeTrace builds the per-cell accumulation shape of the WATER codes:
// per step, each thread computes, then updates `cells` shared cells spread
// over a cell space of size span (span == cells means no two threads
// collide on purpose; span < cells*threads creates collisions), then a
// barrier.
func MergeTrace(threads, steps, cells, span int, computePerStep time.Duration) Trace {
	if span < 1 {
		span = 1
	}
	tr := make(Trace, threads)
	for t := 0; t < threads; t++ {
		var evs []Event
		for s := 0; s < steps; s++ {
			evs = append(evs, Event{Kind: Compute, Dur: computePerStep})
			for cRef := 0; cRef < cells; cRef++ {
				evs = append(evs, Event{Kind: RMW, Obj: (t*cells + cRef) % span})
			}
			evs = append(evs, Event{Kind: Barrier, Obj: 0})
		}
		tr[t] = evs
	}
	return tr
}

// FromSnapshot synthesizes a trace that matches a measured census: the same
// number of barrier episodes, lock acquisitions and RMW operations per
// thread, with the measured compute time spread evenly across phases.
// hotCells is the number of distinct cells the RMW traffic is spread over
// (1 models a single contended counter, larger values model per-molecule or
// per-cell accumulation).
func FromSnapshot(s sync4.Snapshot, threads int, compute time.Duration, hotCells int) Trace {
	if hotCells < 1 {
		hotCells = 1
	}
	episodes := int(s.BarrierWaits) / threads
	if episodes < 1 {
		episodes = 1
	}
	rmwTotal := s.RMWOps() + s.QueuePuts + s.QueueGets + s.StackPushes + s.StackPops
	rmwPerThread := int(rmwTotal) / threads
	locksPerThread := int(s.LockAcquires) / threads
	computePerPhase := compute / time.Duration(threads*episodes)

	tr := make(Trace, threads)
	for t := 0; t < threads; t++ {
		var evs []Event
		rmwLeft := rmwPerThread
		lockLeft := locksPerThread
		for p := 0; p < episodes; p++ {
			evs = append(evs, Event{Kind: Compute, Dur: computePerPhase})
			phasesLeft := episodes - p
			nr := rmwLeft / phasesLeft
			nl := lockLeft / phasesLeft
			for i := 0; i < nr; i++ {
				evs = append(evs, Event{Kind: RMW, Obj: (t + i) % hotCells})
			}
			for i := 0; i < nl; i++ {
				evs = append(evs, Event{Kind: Lock, Obj: (t + i) % hotCells})
			}
			rmwLeft -= nr
			lockLeft -= nl
			evs = append(evs, Event{Kind: Barrier, Obj: 0})
		}
		tr[t] = evs
	}
	return tr
}
