package dessim_test

import (
	"testing"
	"time"

	"testing/quick"

	"repro/internal/dessim"
	"repro/internal/perfmodel"
	"repro/internal/sync4"
)

func machine() perfmodel.Machine { return perfmodel.IceLakeLike() }

func TestComputeOnlyMakespanIsMaxThread(t *testing.T) {
	tr := dessim.Trace{
		{{Kind: dessim.Compute, Dur: 10 * time.Millisecond}},
		{{Kind: dessim.Compute, Dur: 30 * time.Millisecond}},
		{{Kind: dessim.Compute, Dur: 20 * time.Millisecond}},
	}
	res, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms", res.Makespan)
	}
	if res.SyncTime != 0 {
		t.Fatalf("sync time %v on a compute-only trace", res.SyncTime)
	}
	if res.ComputeTime != 60*time.Millisecond {
		t.Fatalf("compute time %v, want 60ms", res.ComputeTime)
	}
}

func TestSharedCellSerializes(t *testing.T) {
	// Two threads hammering one cell must take ~2x the cycles of one
	// thread doing half the work alone, not run in parallel.
	ops := 1000
	mk := func(threads int) dessim.Trace {
		tr := make(dessim.Trace, threads)
		for th := 0; th < threads; th++ {
			for i := 0; i < ops; i++ {
				tr[th] = append(tr[th], dessim.Event{Kind: dessim.RMW, Obj: 0})
			}
		}
		return tr
	}
	solo, err := dessim.Simulate(mk(1), machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	duo, err := dessim.Simulate(mk(2), machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if duo.Makespan < solo.Makespan {
		t.Fatalf("two contending threads (%v) finished before one alone (%v)", duo.Makespan, solo.Makespan)
	}
	// Disjoint cells, by contrast, run in parallel: same makespan as one
	// thread (modulo nothing, they never interact).
	tr := dessim.Trace{nil, nil}
	for i := 0; i < ops; i++ {
		tr[0] = append(tr[0], dessim.Event{Kind: dessim.RMW, Obj: 0})
		tr[1] = append(tr[1], dessim.Event{Kind: dessim.RMW, Obj: 1})
	}
	par, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if par.Makespan != solo.Makespan {
		t.Fatalf("disjoint cells: makespan %v, want solo %v", par.Makespan, solo.Makespan)
	}
}

func TestBarrierAlignsThreads(t *testing.T) {
	tr := dessim.Trace{
		{
			{Kind: dessim.Compute, Dur: time.Millisecond},
			{Kind: dessim.Barrier, Obj: 0},
			{Kind: dessim.Compute, Dur: time.Millisecond},
		},
		{
			{Kind: dessim.Compute, Dur: 10 * time.Millisecond},
			{Kind: dessim.Barrier, Obj: 0},
			{Kind: dessim.Compute, Dur: time.Millisecond},
		},
	}
	res, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	// Both threads leave the barrier at ~10ms; total ~11ms, not 2ms.
	if res.Makespan < 11*time.Millisecond {
		t.Fatalf("makespan %v: barrier did not hold the fast thread", res.Makespan)
	}
	if res.Makespan > 12*time.Millisecond {
		t.Fatalf("makespan %v: barrier cost implausibly high", res.Makespan)
	}
}

func TestClassicBarrierWakeupChainGrowsWithThreads(t *testing.T) {
	m := machine()
	episode := func(kit string, threads int) time.Duration {
		tr := make(dessim.Trace, threads)
		for th := 0; th < threads; th++ {
			tr[th] = []dessim.Event{{Kind: dessim.Barrier, Obj: 0}}
		}
		res, err := dessim.Simulate(tr, m, kit)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	c8, c32 := episode("classic", 8), episode("classic", 32)
	l8, l32 := episode("lockfree", 8), episode("lockfree", 32)
	if c32 <= c8 {
		t.Fatalf("classic barrier episode did not grow with threads: %v vs %v", c8, c32)
	}
	if l32 != l8 {
		t.Fatalf("lockfree barrier episode should be thread-count independent: %v vs %v", l8, l32)
	}
	if c32 <= l32 {
		t.Fatalf("classic episode (%v) not slower than lockfree (%v) at 32 threads", c32, l32)
	}
}

func TestFlagSetReleasesWaiter(t *testing.T) {
	tr := dessim.Trace{
		{
			{Kind: dessim.Compute, Dur: 5 * time.Millisecond},
			{Kind: dessim.FlagSet, Obj: 7},
		},
		{
			{Kind: dessim.FlagWait, Obj: 7},
			{Kind: dessim.Compute, Dur: time.Millisecond},
		},
	}
	res, err := dessim.Simulate(tr, machine(), "classic")
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 6*time.Millisecond {
		t.Fatalf("makespan %v: waiter ran before the flag was set", res.Makespan)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Thread 0 waits on a flag nobody sets.
	tr := dessim.Trace{{{Kind: dessim.FlagWait, Obj: 1}}}
	if _, err := dessim.Simulate(tr, machine(), "classic"); err == nil {
		t.Fatal("deadlock not detected for an unset flag")
	}
	// Mismatched barrier: thread 0 waits twice, thread 1 once.
	tr = dessim.Trace{
		{{Kind: dessim.Barrier, Obj: 0}, {Kind: dessim.Barrier, Obj: 0}},
		{{Kind: dessim.Barrier, Obj: 0}},
	}
	if _, err := dessim.Simulate(tr, machine(), "classic"); err == nil {
		t.Fatal("deadlock not detected for mismatched barrier counts")
	}
}

func TestPhasedTraceClassicSlowerThanLockfree(t *testing.T) {
	tr := dessim.PhasedTrace(16, 100, 50*time.Microsecond, 8, 0.1)
	rc, err := dessim.Simulate(tr, machine(), "classic")
	if err != nil {
		t.Fatal(err)
	}
	rl, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Makespan >= rc.Makespan {
		t.Fatalf("lockfree makespan %v >= classic %v on a barrier-phased trace", rl.Makespan, rc.Makespan)
	}
}

func TestTaskLoopContendedCounter(t *testing.T) {
	tr := dessim.TaskLoopTrace(8, 800, 20*time.Microsecond)
	rc, err := dessim.Simulate(tr, machine(), "classic")
	if err != nil {
		t.Fatal(err)
	}
	rl, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Makespan >= rc.Makespan {
		t.Fatalf("lockfree %v >= classic %v on a task-counter trace", rl.Makespan, rc.Makespan)
	}
}

func TestMergeTraceCollisionsCost(t *testing.T) {
	// Spread-out cells must beat everyone hammering one cell.
	wide := dessim.MergeTrace(8, 3, 100, 800, 100*time.Microsecond)
	hot := dessim.MergeTrace(8, 3, 100, 1, 100*time.Microsecond)
	rw, err := dessim.Simulate(wide, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := dessim.Simulate(hot, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if rh.Makespan <= rw.Makespan {
		t.Fatalf("hot-cell makespan %v not worse than spread cells %v", rh.Makespan, rw.Makespan)
	}
}

// TestSimulationInvariantsQuick property-checks random well-formed phased
// traces: simulation never errors, makespan is at least the longest
// thread's compute, classic is never cheaper than lockfree on the same
// trace, and compute accounting is exact.
func TestSimulationInvariantsQuick(t *testing.T) {
	m := machine()
	f := func(threadsRaw, phasesRaw uint8, computeRaw uint16, rmwRaw uint8, skewRaw uint8) bool {
		threads := int(threadsRaw)%16 + 1
		phases := int(phasesRaw)%20 + 1
		compute := time.Duration(computeRaw) * time.Microsecond
		rmw := int(rmwRaw) % 32
		skew := float64(skewRaw%100) / 100
		tr := dessim.PhasedTrace(threads, phases, compute, rmw, skew)

		rc, err := dessim.Simulate(tr, m, "classic")
		if err != nil {
			return false
		}
		rl, err := dessim.Simulate(tr, m, "lockfree")
		if err != nil {
			return false
		}
		// The slowest thread computes compute*(1+skew*(t-1)/t) per
		// phase; makespan must cover at least its total compute.
		slowest := time.Duration(float64(compute) * (1 + skew*float64(threads-1)/float64(threads)))
		minSpan := time.Duration(phases) * slowest
		if rl.Makespan < minSpan || rc.Makespan < minSpan {
			return false
		}
		if rc.Makespan < rl.Makespan {
			return false
		}
		return rc.ComputeTime == rl.ComputeTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSnapshotMatchesCensusShape(t *testing.T) {
	s := sync4.Snapshot{
		BarrierWaits: 8 * 50, // 50 episodes at 8 threads
		CounterOps:   8000,
		LockAcquires: 800,
	}
	tr := dessim.FromSnapshot(s, 8, 80*time.Millisecond, 4)
	if len(tr) != 8 {
		t.Fatalf("trace has %d threads, want 8", len(tr))
	}
	var barriers, rmws, locks int
	for _, evs := range tr {
		for _, ev := range evs {
			switch ev.Kind {
			case dessim.Barrier:
				barriers++
			case dessim.RMW:
				rmws++
			case dessim.Lock:
				locks++
			}
		}
	}
	if barriers != 400 {
		t.Errorf("synthesized %d barrier waits, want 400", barriers)
	}
	if rmws != 8000 {
		t.Errorf("synthesized %d RMW ops, want 8000", rmws)
	}
	if locks != 800 {
		t.Errorf("synthesized %d lock ops, want 800", locks)
	}

	rc, err := dessim.Simulate(tr, machine(), "classic")
	if err != nil {
		t.Fatal(err)
	}
	rl, err := dessim.Simulate(tr, machine(), "lockfree")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Makespan >= rc.Makespan {
		t.Fatalf("lockfree %v >= classic %v on census-derived trace", rl.Makespan, rc.Makespan)
	}
}
