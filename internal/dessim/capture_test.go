package dessim_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dessim"
	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/sync4"
	"repro/internal/sync4/classic"
	"repro/internal/sync4/lockfree"
	"repro/internal/trace"
	"repro/internal/workloads/fft"
	"repro/internal/workloads/radix"
)

func TestFromCaptureSynthetic(t *testing.T) {
	c := &trace.Capture{
		Lanes: [][]trace.Event{
			{
				{Start: 100, End: 200, Obj: 1, Op: trace.OpRMW},
				{Start: 500, End: 900, Obj: 0, Op: trace.OpBarrierWait},
				{Start: 900, End: 950, Obj: 2, Op: trace.OpLockAcquire},
				{Start: 960, End: 970, Obj: 2, Op: trace.OpLockRelease},
			},
			{
				{Start: 150, End: 900, Obj: 0, Op: trace.OpBarrierWait},
				{Start: 1000, End: 1010, Obj: 3, Op: trace.OpQueuePut},
			},
		},
		Dropped: []int64{0, 0},
		Objects: []trace.Object{
			{Family: trace.FamilyBarrier}, {Family: trace.FamilyCounter},
			{Family: trace.FamilyLock}, {Family: trace.FamilyQueue},
		},
	}
	tr, err := dessim.FromCapture(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("converted %d threads, want 2", len(tr))
	}
	// Lane 0 starts at the global t0 (100): no leading compute, then the
	// 300ns gap to the barrier. The release emits no Lock event, but the
	// 10ns held between acquire-end and release-start surfaces as compute.
	want0 := []dessim.Event{
		{Kind: dessim.RMW, Obj: 0},
		{Kind: dessim.Compute, Dur: 300 * time.Nanosecond},
		{Kind: dessim.Barrier, Obj: 0},
		{Kind: dessim.Lock, Obj: 0},
		{Kind: dessim.Compute, Dur: 10 * time.Nanosecond},
	}
	if len(tr[0]) != len(want0) {
		t.Fatalf("thread 0 has %d events, want %d: %+v", len(tr[0]), len(want0), tr[0])
	}
	for i, w := range want0 {
		if tr[0][i] != w {
			t.Errorf("thread 0 event %d = %+v, want %+v", i, tr[0][i], w)
		}
	}
	// Lane 1 leads with 50ns of compute (150 - t0) and the queue put
	// becomes a shared-cell RMW with a fresh dense id.
	want1 := []dessim.Event{
		{Kind: dessim.Compute, Dur: 50 * time.Nanosecond},
		{Kind: dessim.Barrier, Obj: 0},
		{Kind: dessim.Compute, Dur: 100 * time.Nanosecond},
		{Kind: dessim.RMW, Obj: 1},
	}
	for i, w := range want1 {
		if tr[1][i] != w {
			t.Errorf("thread 1 event %d = %+v, want %+v", i, tr[1][i], w)
		}
	}
	if _, err := dessim.Simulate(tr, perfmodel.IceLakeLike(), "lockfree"); err != nil {
		t.Fatalf("synthetic replay: %v", err)
	}
}

func TestFromCaptureRejectsLossyInput(t *testing.T) {
	if _, err := dessim.FromCapture(nil); err == nil {
		t.Error("nil capture accepted")
	}
	lossy := &trace.Capture{
		Lanes:   [][]trace.Event{{{Start: 1, End: 2, Op: trace.OpRMW}}},
		Dropped: []int64{3},
	}
	if _, err := dessim.FromCapture(lossy); err == nil {
		t.Error("capture with drops accepted")
	}
}

// TestCapturedRunRoundTrip is the tentpole's end-to-end acceptance: run real
// workloads under tracing, check the capture's census agrees exactly with
// sync4.Instrument, convert it with FromCapture, and replay it through the
// simulator. The replayed trace must carry the same per-construct event
// counts and simulate without deadlock.
func TestCapturedRunRoundTrip(t *testing.T) {
	benches := []core.Benchmark{fft.New(), radix.New()}
	kits := []func() sync4.Kit{
		func() sync4.Kit { return classic.New() },
		func() sync4.Kit { return lockfree.New() },
	}
	for _, bench := range benches {
		for _, mk := range kits {
			kit := mk()
			t.Run(bench.Name()+"/"+kit.Name(), func(t *testing.T) {
				rec := trace.NewRecorder(8, 1<<16)
				res, err := harness.Run(bench, core.Config{
					Threads: 4, Kit: kit, Scale: core.ScaleTest, Seed: 1,
				}, harness.Options{Reps: 1, Verify: true, Instrument: true, Trace: rec})
				if err != nil {
					t.Fatal(err)
				}
				if res.Trace == nil {
					t.Fatal("no capture")
				}
				if d := res.Trace.TotalDropped(); d != 0 {
					t.Fatalf("capture dropped %d events; raise capacity", d)
				}

				// Trace census == instrument census, per construct.
				got := res.Trace.OpCounts()
				s := res.Sync
				pairs := []struct {
					name  string
					trace int64
					instr int64
				}{
					{"barrier-wait", got[trace.OpBarrierWait], s.BarrierWaits},
					{"lock-acquire", got[trace.OpLockAcquire], s.LockAcquires},
					{"rmw", got[trace.OpRMW], s.RMWOps()},
					{"flag-set", got[trace.OpFlagSet], s.FlagSets},
					{"flag-wait", got[trace.OpFlagWait], s.FlagWaits},
					{"queue-put", got[trace.OpQueuePut], s.QueuePuts},
					{"queue-get", got[trace.OpQueueGet], s.QueueGets},
					{"stack-push", got[trace.OpStackPush], s.StackPushes},
					{"stack-pop", got[trace.OpStackPop], s.StackPops},
				}
				for _, p := range pairs {
					if p.trace != p.instr {
						t.Errorf("%s: trace %d, census %d", p.name, p.trace, p.instr)
					}
				}
				if s.BarrierWaits == 0 {
					t.Error("census saw no barriers; workload not exercising the kit?")
				}

				// Convert and recount: the replay trace must preserve the
				// per-construct totals (locks fold acquire+release into one).
				tr, err := dessim.FromCapture(res.Trace)
				if err != nil {
					t.Fatal(err)
				}
				var kinds [6]int64
				for _, evs := range tr {
					for _, ev := range evs {
						kinds[ev.Kind]++
					}
				}
				wantRMW := s.RMWOps() + s.QueuePuts + s.QueueGets + s.StackPushes + s.StackPops
				if kinds[dessim.Barrier] != s.BarrierWaits ||
					kinds[dessim.Lock] != s.LockAcquires ||
					kinds[dessim.RMW] != wantRMW ||
					kinds[dessim.FlagSet] != s.FlagSets ||
					kinds[dessim.FlagWait] != s.FlagWaits {
					t.Fatalf("replay counts diverge: barrier %d/%d lock %d/%d rmw %d/%d flags %d+%d/%d+%d",
						kinds[dessim.Barrier], s.BarrierWaits,
						kinds[dessim.Lock], s.LockAcquires,
						kinds[dessim.RMW], wantRMW,
						kinds[dessim.FlagSet], kinds[dessim.FlagWait], s.FlagSets, s.FlagWaits)
				}

				// And the schedule is replayable: the simulation terminates
				// without a participation deadlock.
				sim, err := dessim.Simulate(tr, perfmodel.IceLakeLike(), kit.Name())
				if err != nil {
					t.Fatal(err)
				}
				if sim.Makespan <= 0 {
					t.Fatalf("replayed makespan = %v", sim.Makespan)
				}
			})
		}
	}
}
