// Package dessim is a discrete-event simulator for the synchronization
// behavior of the suite's workloads — the second half of this
// reproduction's gem5 substitute (DESIGN.md, S6). Where internal/perfmodel
// prices a census with closed-form per-operation costs, dessim replays
// per-thread event traces against a modeled machine and computes the actual
// critical path: lock and RMW serialization on shared objects, cache-line
// handoff between cores, barrier rendezvous, and the serialized wakeup
// chains of sleeping (condvar) barriers versus the broadcast release of
// spinning (atomic) barriers.
//
// Traces come from two sources: synthesized canonical patterns (package
// function helpers) parameterized by a real run's census, or hand-built
// event lists in tests. Costs come from perfmodel.Machine, so the two
// models share one machine description.
package dessim

import (
	"fmt"
	"time"

	"repro/internal/perfmodel"
)

// Kind enumerates trace event types.
type Kind int

// Event kinds.
const (
	// Compute advances the thread's clock by Dur without touching
	// shared state.
	Compute Kind = iota
	// Barrier is a rendezvous on barrier object Obj: the thread blocks
	// until every participant of Obj arrives.
	Barrier
	// Lock is one acquire+release of lock object Obj.
	Lock
	// RMW is one read-modify-write (counter, accumulator, min/max,
	// queue or stack slot) on shared cell Obj.
	RMW
	// FlagSet publishes flag object Obj.
	FlagSet
	// FlagWait blocks until flag object Obj was published.
	FlagWait
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Barrier:
		return "barrier"
	case Lock:
		return "lock"
	case RMW:
		return "rmw"
	case FlagSet:
		return "flag-set"
	case FlagWait:
		return "flag-wait"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one step of a thread's trace.
type Event struct {
	Kind Kind
	// Obj identifies the shared object (barrier, lock, cell or flag id);
	// object id spaces are per Kind. Unused for Compute.
	Obj int
	// Dur is the compute duration; used only by Compute events.
	Dur time.Duration
}

// Trace holds one event sequence per thread.
type Trace [][]Event

// Result is the simulation outcome.
type Result struct {
	// Makespan is the modeled wall time: the maximum thread clock.
	Makespan time.Duration
	// PerThread holds each thread's final clock.
	PerThread []time.Duration
	// SyncTime is the total time threads spent in synchronization
	// (everything except Compute events), summed over threads.
	SyncTime time.Duration
	// ComputeTime is the total Compute duration summed over threads.
	ComputeTime time.Duration
}

// Simulate replays tr on machine m with the named kit's construct costs
// ("classic" selects the lock-based costs, anything else the atomic ones).
// It returns an error if barrier or flag usage deadlocks (mismatched
// participation).
func Simulate(tr Trace, m perfmodel.Machine, kitName string) (Result, error) {
	s := &sim{
		m:        m,
		classic:  kitName == "classic",
		tr:       tr,
		idx:      make([]int, len(tr)),
		clock:    make([]float64, len(tr)), // cycles
		lockFree: map[int]objState{},
		cellFree: map[int]objState{},
		flags:    map[int]flagState{},
		barriers: map[int]*barrierState{},
	}
	s.findBarrierParticipants()

	var computeCycles, totalCycles float64
	for {
		progress := false
		blocked := 0
		for t := range tr {
			ran, done := s.runThread(t)
			if ran {
				progress = true
			}
			if !done {
				blocked++
			}
		}
		if blocked == 0 {
			break
		}
		if !progress {
			return Result{}, fmt.Errorf("dessim: deadlock with %d threads blocked (mismatched barrier or flag usage)", blocked)
		}
	}

	res := Result{PerThread: make([]time.Duration, len(tr))}
	var maxClock float64
	for t, c := range s.clock {
		res.PerThread[t] = s.cyclesToTime(c)
		if c > maxClock {
			maxClock = c
		}
		totalCycles += c
	}
	for _, evs := range tr {
		for _, ev := range evs {
			if ev.Kind == Compute {
				computeCycles += float64(ev.Dur.Nanoseconds()) * s.m.ClockGHz
			}
		}
	}
	res.Makespan = s.cyclesToTime(maxClock)
	res.ComputeTime = s.cyclesToTime(computeCycles)
	res.SyncTime = s.cyclesToTime(totalCycles - computeCycles)
	if res.SyncTime < 0 {
		res.SyncTime = 0
	}
	return res, nil
}

// objState tracks when a shared object's cache line becomes available and
// which thread used it last.
type objState struct {
	freeAt float64
	owner  int
}

type flagState struct {
	set   bool
	setAt float64
}

type barrierState struct {
	participants int
	arrived      []arrival
}

type arrival struct {
	thread int
	at     float64
}

type sim struct {
	m        perfmodel.Machine
	classic  bool
	tr       Trace
	idx      []int
	clock    []float64
	lockFree map[int]objState
	cellFree map[int]objState
	flags    map[int]flagState
	barriers map[int]*barrierState
}

func (s *sim) cyclesToTime(c float64) time.Duration {
	return time.Duration(c / s.m.ClockGHz)
}

// findBarrierParticipants counts, per barrier object, how many threads use
// it; every episode requires all of them.
func (s *sim) findBarrierParticipants() {
	for _, evs := range s.tr {
		seen := map[int]bool{}
		for _, ev := range evs {
			if ev.Kind == Barrier && !seen[ev.Obj] {
				seen[ev.Obj] = true
				b := s.barriers[ev.Obj]
				if b == nil {
					b = &barrierState{}
					s.barriers[ev.Obj] = b
				}
				b.participants++
			}
		}
	}
}

// runThread advances thread t until it blocks or finishes. It reports
// whether any event was consumed and whether the trace is exhausted.
func (s *sim) runThread(t int) (ran, done bool) {
	for s.idx[t] < len(s.tr[t]) {
		ev := s.tr[t][s.idx[t]]
		switch ev.Kind {
		case Compute:
			s.clock[t] += float64(ev.Dur.Nanoseconds()) * s.m.ClockGHz
		case Lock:
			s.access(t, s.lockFree, ev.Obj, s.lockCost())
		case RMW:
			s.access(t, s.cellFree, ev.Obj, s.rmwCost())
		case FlagSet:
			cost := s.m.AtomicRMW
			if s.classic {
				cost = s.m.LockUncontended
			}
			s.clock[t] += cost
			f := s.flags[ev.Obj]
			if !f.set || s.clock[t] < f.setAt {
				s.flags[ev.Obj] = flagState{set: true, setAt: s.clock[t]}
			}
		case FlagWait:
			f := s.flags[ev.Obj]
			if !f.set {
				return ran, false // block until some thread sets it
			}
			wake := s.m.SpinCheck + s.m.CoherenceMiss
			if s.classic {
				wake = s.m.CondvarWakeup
			}
			if f.setAt > s.clock[t] {
				s.clock[t] = f.setAt
			}
			s.clock[t] += wake
		case Barrier:
			if !s.barrierArrive(t, ev.Obj) {
				return ran, false
			}
		}
		s.idx[t]++
		ran = true
	}
	return ran, true
}

// lockCost returns the base cost of one uncontended lock acquire+release.
func (s *sim) lockCost() float64 {
	if s.classic {
		return s.m.LockUncontended
	}
	return s.m.AtomicRMW
}

// rmwCost returns the base cost of one shared-cell update.
func (s *sim) rmwCost() float64 {
	if s.classic {
		return s.m.LockUncontended
	}
	return s.m.AtomicRMW
}

// access serializes thread t on shared object obj: it waits for the line,
// pays a transfer penalty when the previous user was another thread, and
// occupies the object for the operation's duration.
func (s *sim) access(t int, table map[int]objState, obj int, base float64) {
	st, seen := table[obj]
	start := s.clock[t]
	if start < st.freeAt {
		start = st.freeAt
	}
	cost := base
	if seen && st.owner != t {
		if s.classic {
			cost += s.m.LockHandoff
		} else {
			cost += s.m.CASRetry + s.m.CoherenceMiss
		}
	}
	s.clock[t] = start + cost
	table[obj] = objState{freeAt: s.clock[t], owner: t}
}

// barrierArrive registers thread t at barrier obj. When the last
// participant arrives the episode resolves: every waiter resumes at the
// release time, plus — for the classic condvar barrier — its position in
// the serialized wakeup chain.
func (s *sim) barrierArrive(t int, obj int) bool {
	b := s.barriers[obj]
	for _, a := range b.arrived {
		if a.thread == t {
			return false // already waiting for this episode
		}
	}
	b.arrived = append(b.arrived, arrival{thread: t, at: s.clock[t]})
	if len(b.arrived) < b.participants {
		return false
	}

	// Episode resolves now.
	var release float64
	for _, a := range b.arrived {
		if a.at > release {
			release = a.at
		}
	}
	if s.classic {
		release += s.m.BarrierMutexBase + s.m.LockUncontended
		// The broadcast's kernel queue walk is serial (a fraction of a
		// wakeup per sleeper), but the woken threads resume on their
		// own cores in parallel, each paying one full wakeup latency.
		// The last arrival (who triggers the broadcast) continues
		// immediately.
		chain := 0
		for _, a := range b.arrived {
			s.clock[a.thread] = release
			if a.thread != t {
				chain++
				s.clock[a.thread] += s.m.CondvarWakeup +
					float64(chain)*s.m.CondvarWakeup/10
			}
		}
	} else {
		release += s.m.BarrierAtomic + s.m.AtomicRMW
		// Spinners observe the phase flip after one line transfer,
		// all in parallel.
		for _, a := range b.arrived {
			s.clock[a.thread] = release
			if a.thread != t {
				s.clock[a.thread] += s.m.SpinCheck + s.m.CoherenceMiss
			}
		}
	}

	// Consume the barrier event of every other waiter (their next event
	// is this barrier; it has now happened).
	for _, a := range b.arrived {
		if a.thread != t {
			s.idx[a.thread]++
		}
	}
	b.arrived = b.arrived[:0]
	return true
}
