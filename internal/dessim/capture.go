package dessim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// FromCapture converts a recorded synchronization trace into a replayable
// dessim Trace: each non-empty lane becomes one thread, the gaps between a
// lane's events become Compute steps, and the events themselves map onto
// the simulator's kinds —
//
//	barrier-wait          -> Barrier
//	lock-acquire          -> Lock   (dessim's Lock is acquire+release;
//	lock-release          -> dropped — already folded into Lock)
//	rmw / queue / stack   -> RMW    (all shared-cell updates)
//	flag-set / flag-wait  -> FlagSet / FlagWait
//
// Object ids are densified per simulator id space (barriers, locks, cells,
// flags), preserving distinctness so contention stays spread over exactly
// as many objects as the real run touched.
//
// The conversion is only structurally sound for complete captures: a
// dropped barrier event would change a barrier's participant count and
// deadlock the replay, so captures with drops are rejected — rerun with a
// larger recorder capacity.
func FromCapture(c *trace.Capture) (Trace, error) {
	if c == nil {
		return nil, fmt.Errorf("dessim: nil capture")
	}
	if d := c.TotalDropped(); d > 0 {
		return nil, fmt.Errorf("dessim: capture dropped %d events; raise the recorder's per-lane capacity", d)
	}

	// Align all lanes on the earliest recorded start so leading idle time
	// does not inflate the first thread's compute.
	t0 := int64(math.MaxInt64)
	for _, lane := range c.Lanes {
		if len(lane) > 0 && lane[0].Start < t0 {
			t0 = lane[0].Start
		}
	}

	dense := map[Kind]map[uint32]int{}
	id := func(space Kind, obj uint32) int {
		m := dense[space]
		if m == nil {
			m = map[uint32]int{}
			dense[space] = m
		}
		d, ok := m[obj]
		if !ok {
			d = len(m)
			m[obj] = d
		}
		return d
	}

	var tr Trace
	for _, lane := range c.Lanes {
		if len(lane) == 0 {
			continue
		}
		evs := make([]Event, 0, 2*len(lane))
		cursor := t0
		for _, ev := range lane {
			if gap := ev.Start - cursor; gap > 0 {
				evs = append(evs, Event{Kind: Compute, Dur: time.Duration(gap)})
			}
			if ev.End > cursor {
				cursor = ev.End
			}
			switch ev.Op {
			case trace.OpBarrierWait:
				evs = append(evs, Event{Kind: Barrier, Obj: id(Barrier, ev.Obj)})
			case trace.OpLockAcquire:
				evs = append(evs, Event{Kind: Lock, Obj: id(Lock, ev.Obj)})
			case trace.OpLockRelease:
				// Folded into the acquire's Lock event.
			case trace.OpRMW, trace.OpQueuePut, trace.OpQueueGet,
				trace.OpStackPush, trace.OpStackPop:
				evs = append(evs, Event{Kind: RMW, Obj: id(RMW, ev.Obj)})
			case trace.OpFlagSet:
				evs = append(evs, Event{Kind: FlagSet, Obj: id(FlagSet, ev.Obj)})
			case trace.OpFlagWait:
				evs = append(evs, Event{Kind: FlagWait, Obj: id(FlagSet, ev.Obj)})
			default:
				return nil, fmt.Errorf("dessim: capture holds unknown op %d", ev.Op)
			}
		}
		tr = append(tr, evs)
	}
	return tr, nil
}
