package results_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

func sample() *results.Table {
	t := results.New("E1", "normalized time", "benchmark", "classic", "lockfree")
	t.AddRow("fft", "10ms", "7ms")
	t.AddRow("radix", 5, 4.5)
	return t
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== E1: normalized time ==", "benchmark", "fft", "radix", "4.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "benchmark,classic,lockfree" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "fft,10ms,7ms" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestCSVPadsShortRows(t *testing.T) {
	tab := results.New("E9", "x", "a", "b", "c")
	tab.AddRow("only")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "only,," {
		t.Fatalf("padded row = %q, want %q", lines[1], "only,,")
	}
}

func TestSaveCSVAndEmit(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := sample().Emit(&buf, dir, "icelake"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e1-icelake.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "benchmark,classic,lockfree") {
		t.Fatalf("saved CSV wrong: %q", data)
	}
	if !strings.Contains(buf.String(), "== E1") {
		t.Fatal("Emit did not render text output")
	}
	// No csvDir: text only, no error.
	if err := sample().Emit(&buf, "", ""); err != nil {
		t.Fatal(err)
	}
}
