// Package results provides the typed table model the experiment generators
// emit: a Table carries an experiment id, a title, column headers and string
// rows, and renders either as an aligned text table (for the terminal) or
// as CSV (for plotting pipelines). Keeping the data model separate from the
// rendering lets every experiment produce both formats from one code path.
package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's tabular output.
type Table struct {
	// ID is the experiment identifier ("E1", "E5b", ...).
	ID string
	// Title is the human-readable banner.
	Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds data cells; short rows are padded with empty cells.
	Rows [][]string
}

// New builds an empty table.
func New(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as an aligned text block with a banner.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// WriteCSV writes the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := row
		if len(row) < len(t.Columns) {
			padded = append(append([]string{}, row...),
				make([]string, len(t.Columns)-len(row))...)
		}
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<id>[-suffix].csv, creating dir if
// needed. The suffix distinguishes multiple tables of one experiment.
func (t *Table) SaveCSV(dir, suffix string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(t.ID)
	if suffix != "" {
		name += "-" + suffix
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// Emit renders the table to out and, when csvDir is non-empty, also saves
// it as CSV — the one call every experiment generator ends with.
func (t *Table) Emit(out io.Writer, csvDir, suffix string) error {
	if err := t.Render(out); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	return t.SaveCSV(csvDir, suffix)
}
