package loadgen

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
)

// SimConfig parameterizes the virtual-clock model of splash4d's admission
// pipeline: a bounded ring, a worker pool, singleflight dedup, and the
// adaptive Retry-After advice the daemon computes for bounced clients.
// Everything is virtual time — a run over hours of modeled traffic
// finishes in milliseconds and produces identical results for identical
// seeds.
type SimConfig struct {
	Workers  int
	QueueCap int
	// ServiceNS is the mean modeled job service time. Individual jobs draw
	// from [0.5, 2.5)× the mean.
	ServiceNS int64
	// MaxRetries bounds how many times a bounced (429) client re-submits,
	// honoring the advised Retry-After each time, before giving up. This
	// mirrors the documented client retry contract.
	MaxRetries int
}

// Outcome classifies how one scheduled request ended.
type Outcome int

const (
	// OutcomeDone: the request created a job and it completed.
	OutcomeDone Outcome = iota
	// OutcomeDeduped: singleflight attached the request to an identical
	// in-flight job; it completed with that job.
	OutcomeDeduped
	// OutcomeError: the request exhausted its retry budget against a full
	// ring and gave up.
	OutcomeError
)

// RequestResult is the simulator's record of one scheduled request.
type RequestResult struct {
	Request Request
	Outcome Outcome
	// LatencyNS is first arrival → job completion (including every
	// Retry-After wait for bounced submissions).
	LatencyNS int64
	// Rejections counts 429 bounces this request absorbed.
	Rejections int
}

// SimResult aggregates one shape's simulated run.
type SimResult struct {
	Results  []RequestResult
	Latency  *stats.Histogram // completion latencies, ns
	Accepted int
	Deduped  int
	Rejected int // total 429 bounces (a request can bounce repeatedly)
	Errors   int // requests that gave up
	// MaxQueueDepth and MaxRetryAfterS record the deepest backlog and the
	// largest Retry-After the model advised — the load's stress signature.
	MaxQueueDepth  int
	MaxRetryAfterS int
}

// Event kinds for the discrete-event loop.
const (
	evArrival = iota
	evJobDone
)

type simEvent struct {
	atNS int64
	kind int
	seq  int // tie-break: FIFO among equal-time events, deterministic
	req  *simRequest
	job  *simJob
}

type eventQueue []*simEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].atNS != q[j].atNS {
		return q[i].atNS < q[j].atNS
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*simEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type simRequest struct {
	idx        int // index into the schedule
	firstNS    int64
	rejections int
}

type simJob struct {
	specKey string
	// waiters are every request (creator first) resolved when the job
	// completes.
	waiters []*simRequest
	running bool
}

// Simulate runs one shape's schedule through the pipeline model.
func Simulate(cfg SimConfig, schedule []Request, seed uint64) (*SimResult, error) {
	if cfg.Workers <= 0 || cfg.QueueCap <= 0 || cfg.ServiceNS <= 0 {
		return nil, fmt.Errorf("sim needs positive workers, queue capacity, and service time")
	}
	serviceRNG := newRNG(seed).split()
	res := &SimResult{
		Results: make([]RequestResult, len(schedule)),
		Latency: stats.NewHistogram(),
	}
	for i := range schedule {
		res.Results[i].Request = schedule[i]
	}

	var events eventQueue
	seq := 0
	push := func(ev *simEvent) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	for i := range schedule {
		push(&simEvent{atNS: schedule[i].AtNS, kind: evArrival,
			req: &simRequest{idx: i, firstNS: schedule[i].AtNS}})
	}

	active := map[string]*simJob{} // specKey → in-flight job (queued or running)
	var queue []*simJob            // admission ring: FIFO of not-yet-running jobs
	idle := cfg.Workers
	inflight := 0

	// drawService models the run duration spread: [0.5, 2.5)× the mean,
	// biased low (u² keeps most jobs short, a few long — a tail).
	drawService := func() int64 {
		u := serviceRNG.float64()
		return int64(float64(cfg.ServiceNS) * (0.5 + 2*u*u))
	}
	startNext := func(now int64) {
		for idle > 0 && len(queue) > 0 {
			job := queue[0]
			queue = queue[1:]
			job.running = true
			idle--
			inflight++
			push(&simEvent{atNS: now + drawService(), kind: evJobDone, job: job})
		}
	}
	complete := func(now int64, job *simJob) {
		for _, w := range job.waiters {
			r := &res.Results[w.idx]
			r.LatencyNS = now - w.firstNS
			r.Rejections = w.rejections
			res.Latency.Add(r.LatencyNS)
			if w == job.waiters[0] {
				r.Outcome = OutcomeDone
				res.Accepted++
			} else {
				r.Outcome = OutcomeDeduped
				res.Deduped++
			}
		}
		delete(active, job.specKey)
		idle++
		inflight--
		startNext(now)
	}
	// retryAfterS mirrors the daemon's adaptive advice: a second per
	// backlogged job per worker, clamped to [1, 30].
	retryAfterS := func() int {
		s := 1 + (len(queue)+inflight)/cfg.Workers
		if s > 30 {
			s = 30
		}
		return s
	}
	arrive := func(now int64, req *simRequest) {
		key := res.Results[req.idx].Request.SpecKey
		if job, ok := active[key]; ok {
			job.waiters = append(job.waiters, req)
			return
		}
		if len(queue) >= cfg.QueueCap {
			req.rejections++
			res.Rejected++
			ra := retryAfterS()
			if ra > res.MaxRetryAfterS {
				res.MaxRetryAfterS = ra
			}
			if req.rejections > cfg.MaxRetries {
				r := &res.Results[req.idx]
				r.Outcome = OutcomeError
				r.Rejections = req.rejections
				r.LatencyNS = now - req.firstNS
				res.Errors++
				return
			}
			push(&simEvent{atNS: now + int64(ra)*1e9, kind: evArrival, req: req})
			return
		}
		job := &simJob{specKey: key, waiters: []*simRequest{req}}
		active[key] = job
		queue = append(queue, job)
		if d := len(queue); d > res.MaxQueueDepth {
			res.MaxQueueDepth = d
		}
		startNext(now)
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(*simEvent)
		switch ev.kind {
		case evArrival:
			arrive(ev.atNS, ev.req)
		case evJobDone:
			complete(ev.atNS, ev.job)
		}
	}
	return res, nil
}
