package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubDaemon fakes just enough of the splash4d API surface to exercise
// the live runner's retry contract handling without real workloads: a
// bounded "ring" of concurrently-open jobs, instant completion after one
// poll, singleflight by spec key, and optional contract sabotage.
type stubDaemon struct {
	mu       sync.Mutex
	capacity int
	open     map[string]string // specKey → job id
	done     map[string]bool
	nextID   int
	bounces  int
	// sabotage drops the Retry-After header from 429s.
	sabotage bool
}

func newStubDaemon(capacity int) *stubDaemon {
	return &stubDaemon{capacity: capacity, open: map[string]string{}, done: map[string]bool{}}
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", d.submit)
	mux.HandleFunc("GET /runs/{id}", d.status)
	return mux
}

func (d *stubDaemon) submit(w http.ResponseWriter, r *http.Request) {
	var spec struct {
		Workload string `json:"workload"`
		Seed     int64  `json:"seed"`
	}
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := fmt.Sprintf("%s/%d", spec.Workload, spec.Seed)
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.open[key]; ok {
		writeStub(w, http.StatusOK, map[string]any{"id": id, "deduped": true})
		return
	}
	if len(d.open) >= d.capacity {
		d.bounces++
		if !d.sabotage {
			w.Header().Set("Retry-After", "1")
		}
		writeStub(w, http.StatusTooManyRequests, map[string]any{"error": "ring full"})
		return
	}
	d.nextID++
	id := fmt.Sprintf("job-%d", d.nextID)
	d.open[key] = id
	go func() { // complete shortly after admission
		time.Sleep(5 * time.Millisecond)
		d.mu.Lock()
		defer d.mu.Unlock()
		d.done[id] = true
		delete(d.open, key)
	}()
	writeStub(w, http.StatusAccepted, map[string]any{"id": id})
}

func (d *stubDaemon) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	defer d.mu.Unlock()
	status := "running"
	if d.done[id] {
		status = "done"
	}
	writeStub(w, http.StatusOK, map[string]any{"id": id, "status": status})
}

func writeStub(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func liveSpec(req Request) []byte {
	return []byte(fmt.Sprintf(`{"workload":"stub","seed":%d}`, req.Seed))
}

func liveConfig(target string) LiveConfig {
	return LiveConfig{
		Target:          target,
		MaxRetries:      5,
		RetryAfterScale: 0.01, // compress the honored sleeps to ~10ms
		TimeScale:       0.001,
		SpecFor:         liveSpec,
		PollInterval:    2 * time.Millisecond,
		JobTimeout:      5 * time.Second,
		Concurrency:     16,
	}
}

func TestRunLiveOpenLoopContract(t *testing.T) {
	daemon := newStubDaemon(2)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()

	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeBurst, Requests: 60, SpanNS: 3e9, Seed: 21})
	res, err := RunLive(liveConfig(ts.URL), sched)
	if err != nil {
		t.Fatal(err)
	}
	accepted, deduped, rejected, _, errors := res.Counts()
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("contract violations against a compliant daemon: %v", v)
	}
	if accepted+deduped+errors != 60 {
		t.Errorf("outcomes %d+%d+%d don't cover 60 requests", accepted, deduped, errors)
	}
	if accepted == 0 {
		t.Error("no accepted requests")
	}
	if rejected == 0 {
		t.Error("burst against capacity-2 stub produced no 429s")
	}
	if h := res.LatencyHist(); int(h.N()) != accepted+deduped {
		t.Errorf("latency histogram holds %d, want %d", h.N(), accepted+deduped)
	}
	if h := res.SubmitHist(); h.N() == 0 {
		t.Error("no submit round-trips recorded")
	}
}

func TestRunLiveClosedLoopDedup(t *testing.T) {
	daemon := newStubDaemon(64)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()

	cfg := liveConfig(ts.URL)
	cfg.Loop = "closed"
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeDedupHostile, Requests: 48, SpanNS: 1e9, Seed: 8})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	_, deduped, _, _, errors := res.Counts()
	if deduped == 0 {
		t.Error("dedup-hostile closed loop saw no singleflight hits")
	}
	if errors != 0 {
		t.Errorf("%d errors against an uncontended stub", errors)
	}
}

func TestRunLiveMultiTargetRoundRobin(t *testing.T) {
	a, b := newStubDaemon(64), newStubDaemon(64)
	tsA := httptest.NewServer(a.handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.handler())
	defer tsB.Close()

	cfg := liveConfig("")
	cfg.Target = ""
	cfg.Targets = []string{tsA.URL, tsB.URL}
	cfg.Loop = "closed"
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 40, SpanNS: 1e9, Seed: 11})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	accepted, deduped, _, _, errors := res.Counts()
	if accepted+deduped+errors != 40 || errors != 0 {
		t.Fatalf("outcomes accepted=%d deduped=%d errors=%d don't cover 40 clean requests",
			accepted, deduped, errors)
	}
	// Round-robin must spread submissions across both stubs. Admission
	// counts are tracked per daemon; each must have seen real work.
	for name, d := range map[string]*stubDaemon{"a": a, "b": b} {
		d.mu.Lock()
		n := d.nextID
		d.mu.Unlock()
		if n == 0 {
			t.Errorf("target %s admitted no jobs; round-robin did not reach it", name)
		}
	}
}

func TestRunLiveFailoverDeadTarget(t *testing.T) {
	// One target in the rotation is a corpse (listener closed, connections
	// refused); every request must still land on the healthy node, with the
	// abandoned attempts tallied as failovers instead of errors.
	daemon := newStubDaemon(64)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the address is now connection-refused

	cfg := liveConfig("")
	cfg.Target = ""
	cfg.Targets = []string{deadURL, ts.URL}
	cfg.Loop = "closed"
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 24, SpanNS: 1e9, Seed: 17})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("failover left contract violations: %v", v)
	}
	accepted, deduped, _, _, errors := res.Counts()
	if accepted+deduped != 24 || errors != 0 {
		t.Fatalf("accepted=%d deduped=%d errors=%d, want all 24 to land despite the dead node",
			accepted, deduped, errors)
	}
	if res.FailoverCount() == 0 {
		t.Error("a dead node in the rotation produced no failovers")
	}
}

func TestRunLiveFailover5xx(t *testing.T) {
	// A node answering 500 (no Retry-After contract) must be failed over,
	// not treated as a terminal unexpected status.
	daemon := newStubDaemon(64)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal", http.StatusInternalServerError)
	}))
	defer broken.Close()

	cfg := liveConfig("")
	cfg.Target = ""
	cfg.Targets = []string{broken.URL, ts.URL}
	cfg.Loop = "closed"
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 24, SpanNS: 1e9, Seed: 23})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("failover left contract violations: %v", v)
	}
	accepted, deduped, _, _, errors := res.Counts()
	if accepted+deduped != 24 || errors != 0 {
		t.Fatalf("accepted=%d deduped=%d errors=%d, want all 24 to land despite the 500-serving node",
			accepted, deduped, errors)
	}
	if res.FailoverCount() == 0 {
		t.Error("a 500-serving node in the rotation produced no failovers")
	}
}

func TestRunLiveAllTargetsDeadExhaustsBudget(t *testing.T) {
	// With every node dead the retry budget must run out and the request
	// must land in Errors with a transport violation — failover bounds the
	// work, it doesn't loop forever.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	cfg := liveConfig("")
	cfg.Target = ""
	cfg.Targets = []string{deadURL}
	cfg.Loop = "closed"
	cfg.MaxRetries = 2
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 3, SpanNS: 1e8, Seed: 9})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, errors := res.Counts()
	if errors != 3 {
		t.Fatalf("errors=%d, want all 3 requests terminal after budget exhaustion", errors)
	}
	if got := res.FailoverCount(); got != 6 {
		t.Errorf("failovers=%d, want 2 per request (MaxRetries) before giving up", got)
	}
	found := false
	for _, v := range res.Violations() {
		if strings.Contains(v, "transport error after") {
			found = true
		}
	}
	if !found {
		t.Errorf("budget exhaustion produced no transport violation; got %v", res.Violations())
	}
}

func TestRunLiveSingleTargetFieldCompat(t *testing.T) {
	// The legacy single-string Target field must keep working untouched —
	// RunLive promotes it into a one-element rotation.
	daemon := newStubDaemon(64)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()

	cfg := liveConfig(ts.URL)
	if len(cfg.Targets) != 0 {
		t.Fatal("test wants the legacy Target-only configuration")
	}
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 12, SpanNS: 1e9, Seed: 3})
	res, err := RunLive(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	accepted, deduped, _, _, errors := res.Counts()
	if accepted+deduped != 12 || errors != 0 {
		t.Fatalf("accepted=%d deduped=%d errors=%d, want 12 clean outcomes", accepted, deduped, errors)
	}
}

func TestRunLiveFlagsMissingRetryAfter(t *testing.T) {
	daemon := newStubDaemon(1)
	daemon.sabotage = true
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()

	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeBurst, Requests: 40, SpanNS: 1e9, Seed: 5})
	res, err := RunLive(liveConfig(ts.URL), sched)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations() {
		if strings.Contains(v, "without Retry-After") {
			found = true
		}
	}
	if !found {
		t.Errorf("sabotaged daemon produced no Retry-After violation; got %v", res.Violations())
	}
}
