package loadgen

// rng is a splitmix64 PRNG: tiny, fast, and fully determined by its seed,
// which is what makes replayable schedules and byte-for-byte reproducible
// reports possible. Every randomized choice in this package — arrival
// jitter, service-time spread, retry jitter — flows through one of these,
// never through math/rand's global (ambient) state.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// split derives an independent stream, so two consumers (say, the schedule
// builder and the service-time sampler) cannot perturb each other's draws
// when one of them changes how many values it consumes.
func (r *rng) split() *rng {
	return newRNG(r.next() ^ 0xd1b54a32d192ed03)
}
