package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/stats"
)

// SLO is the gate threshold set for one shape: latency ceilings at the
// median and the tail, plus the tolerable fraction of failed requests.
type SLO struct {
	P50MaxNS    int64   `json:"p50_max_ns"`
	P99MaxNS    int64   `json:"p99_max_ns"`
	ErrorBudget float64 `json:"error_budget"`
}

// ShapeReport is one shape's measured outcome plus its verdict. All
// fields are derived from the schedule and the model (or the live run) —
// no wall-clock timestamps, so a pinned-seed sim report is byte-stable.
type ShapeReport struct {
	Shape    string `json:"shape"`
	Requests int    `json:"requests"`
	Accepted int    `json:"accepted"`
	Deduped  int    `json:"deduped"`
	// Rejected429 counts every 429 bounce; a request that bounced and then
	// got in is counted here and in Accepted.
	Rejected429 int `json:"rejected_429"`
	Errors      int `json:"errors"`
	// Failovers counts live submission attempts abandoned to the next
	// target after a connection error or non-contract 5xx (always zero in
	// sim mode, which models a single healthy daemon).
	Failovers int `json:"failovers,omitempty"`

	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	MinNS  int64   `json:"min_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS float64 `json:"mean_ns"`

	MaxQueueDepth  int `json:"max_queue_depth,omitempty"`
	MaxRetryAfterS int `json:"max_retry_after_s,omitempty"`

	ErrorRate  float64  `json:"error_rate"`
	SLO        SLO      `json:"slo"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Report is the full traffic-gate artifact (BENCH_traffic.json).
type Report struct {
	Mode     string `json:"mode"` // "sim" or "live"
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`
	QueueCap int    `json:"queue_cap"`
	// Requests and SpanNS echo the per-shape schedule sizing.
	Requests int   `json:"requests_per_shape"`
	SpanNS   int64 `json:"span_ns"`

	Shapes []ShapeReport `json:"shapes"`
	// ContractChecks records the live-mode retry-contract verifications
	// (empty in sim mode, where the model enforces the contract by
	// construction).
	ContractChecks []string `json:"contract_checks,omitempty"`
	Pass           bool     `json:"pass"`
}

// Gate scores one shape's measurements against its SLO and returns the
// report entry with the verdict and each violated threshold spelled out.
func Gate(shape string, requests int, lat *stats.Histogram,
	accepted, deduped, rejected, errors int, slo SLO) ShapeReport {
	rep := ShapeReport{
		Shape:       shape,
		Requests:    requests,
		Accepted:    accepted,
		Deduped:     deduped,
		Rejected429: rejected,
		Errors:      errors,
		SLO:         slo,
	}
	if lat.N() > 0 {
		rep.P50NS = lat.Quantile(0.50)
		rep.P99NS = lat.Quantile(0.99)
		rep.MinNS = lat.Min()
		rep.MaxNS = lat.Max()
		rep.MeanNS = lat.Mean()
	}
	if requests > 0 {
		rep.ErrorRate = float64(errors) / float64(requests)
	}
	if slo.P50MaxNS > 0 && rep.P50NS > slo.P50MaxNS {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("p50 %dns exceeds SLO %dns", rep.P50NS, slo.P50MaxNS))
	}
	if slo.P99MaxNS > 0 && rep.P99NS > slo.P99MaxNS {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("p99 %dns exceeds SLO %dns", rep.P99NS, slo.P99MaxNS))
	}
	if rep.ErrorRate > slo.ErrorBudget {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("error rate %.4f exceeds budget %.4f", rep.ErrorRate, slo.ErrorBudget))
	}
	rep.Pass = len(rep.Violations) == 0
	return rep
}

// Finalize sets the report's overall verdict: every shape passed and no
// contract check failed.
func (r *Report) Finalize() {
	r.Pass = true
	for _, s := range r.Shapes {
		if !s.Pass {
			r.Pass = false
		}
	}
	for _, c := range r.ContractChecks {
		if len(c) >= 4 && c[:4] == "FAIL" {
			r.Pass = false
		}
	}
}

// Encode renders the report deterministically: fixed field order (struct
// order), two-space indent, trailing newline.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report artifact.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// SimSLOs returns the pinned thresholds for the deterministic model run.
// They are set with ~2× headroom over the pinned-seed measurements so the
// gate trips on regressions in the model or scheduler, not on noise —
// there is no noise in sim mode.
func SimSLOs(cfg SimConfig) map[string]SLO {
	svc := cfg.ServiceNS
	return map[string]SLO{
		// Steady load keeps the ring shallow: latency is a few service
		// times (queueing behind at most a couple of jobs).
		ShapeSteady: {P50MaxNS: 8 * svc, P99MaxNS: 30 * svc, ErrorBudget: 0},
		// Bursts overrun the ring by design; what is bounded is the tail
		// after Retry-After spreading, and a small give-up budget.
		ShapeBurst: {P50MaxNS: 30 * svc, P99MaxNS: 150 * svc, ErrorBudget: 0.02},
		// The diurnal peak is gentler than a burst but sustained.
		ShapeDiurnal: {P50MaxNS: 15 * svc, P99MaxNS: 80 * svc, ErrorBudget: 0.01},
		// Dedup-hostile traffic mostly coalesces; latency tracks the
		// underlying job, and nothing should error.
		ShapeDedupHostile: {P50MaxNS: 10 * svc, P99MaxNS: 40 * svc, ErrorBudget: 0},
	}
}
