package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// LiveConfig drives real HTTP traffic at a splash4d instance. The live
// runner is the end-to-end verifier of the client retry contract: every
// 429 and 503 must carry a usable Retry-After, honored (scaled) before the
// bounded retry, and the terminal job states must line up with what the
// daemon advertised.
type LiveConfig struct {
	Target string // base URL, e.g. http://127.0.0.1:8080
	// Targets, when set, supersedes Target: submissions round-robin across
	// the listed base URLs (a clustered splash4d accepts a spec on any node
	// and routes it to its owner). Polling always goes to the node that
	// accepted the submission, so reads follow the redirect-free job view.
	// A connection error or a non-503 5xx fails the attempt over to the
	// next target in rotation (tallied in LiveResult.Failovers) until the
	// retry budget runs out, so one dead node doesn't sink the run.
	// A single-element Targets behaves identically to Target.
	Targets []string
	Client  *http.Client
	// Loop selects the generator discipline: "open" replays the schedule's
	// arrival times (offered load independent of completions), "closed"
	// runs Concurrency workers back to back (offered load throttled by
	// response times).
	Loop        string
	Concurrency int
	MaxRetries  int
	// RetryAfterScale compresses the honored Retry-After sleeps so a smoke
	// run finishes in seconds; 1.0 sleeps the full advised time. The
	// contract check (header present, integer, in [1,30]) is unaffected.
	RetryAfterScale float64
	// TimeScale compresses the schedule's arrival offsets in open-loop
	// mode (virtual ns → real ns).
	TimeScale float64
	// SpecFor renders the POST /runs body for one scheduled request.
	// Requests sharing a SpecKey must produce identical bodies.
	SpecFor      func(Request) []byte
	PollInterval time.Duration
	JobTimeout   time.Duration
}

// LiveResult aggregates a live run. Latency is client-observed wall time
// from first submission to terminal job state; Submit is the POST round
// trip alone.
type LiveResult struct {
	mu          sync.Mutex
	Latency     *stats.Histogram
	Submit      *stats.Histogram
	rr          atomic.Int64 // round-robin cursor over LiveConfig.Targets
	Accepted    int
	Deduped     int
	Rejected429 int
	Unavail503  int
	Errors      int
	// Failovers counts submission attempts abandoned to the next target in
	// rotation after a connection error or a non-contract 5xx (anything in
	// the 500 range except 503, which carries the Retry-After contract and
	// is tallied under Unavail503 instead). A request that fails over and
	// then lands still counts once under Accepted/Deduped.
	Failovers  int
	violations map[string]int
}

// Counts returns the outcome tallies (taken under the lock, so safe to
// call while a run is still in flight).
func (r *LiveResult) Counts() (accepted, deduped, rejected429, unavail503, errors int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Accepted, r.Deduped, r.Rejected429, r.Unavail503, r.Errors
}

// FailoverCount returns how many submission attempts were abandoned to
// the next target after a connection error or non-contract 5xx.
func (r *LiveResult) FailoverCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Failovers
}

// LatencyHist returns a snapshot copy of the completion-latency histogram.
func (r *LiveResult) LatencyHist() *stats.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := stats.NewHistogram()
	h.Merge(r.Latency)
	return h
}

// SubmitHist returns a snapshot copy of the POST round-trip histogram.
func (r *LiveResult) SubmitHist() *stats.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := stats.NewHistogram()
	h.Merge(r.Submit)
	return h
}

// Violations returns the deduplicated contract violations observed, each
// with its occurrence count, in sorted order.
func (r *LiveResult) Violations() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.violations))
	for v, n := range r.violations {
		out = append(out, fmt.Sprintf("%s (x%d)", v, n))
	}
	sort.Strings(out)
	return out
}

func (r *LiveResult) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.violations == nil {
		r.violations = map[string]int{}
	}
	r.violations[fmt.Sprintf(format, args...)]++
}

// RunLive replays one schedule against a live daemon.
func RunLive(cfg LiveConfig, schedule []Request) (*LiveResult, error) {
	if len(cfg.Targets) == 0 && cfg.Target != "" {
		cfg.Targets = []string{cfg.Target}
	}
	if len(cfg.Targets) == 0 || cfg.SpecFor == nil {
		return nil, fmt.Errorf("live run needs a target and a spec renderer")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.RetryAfterScale == 0 {
		cfg.RetryAfterScale = 1
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 60 * time.Second
	}
	res := &LiveResult{Latency: stats.NewHistogram(), Submit: stats.NewHistogram()}

	switch cfg.Loop {
	case "", "open":
		start := time.Now()
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Concurrency)
		for i := range schedule {
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				due := start.Add(time.Duration(float64(req.AtNS) * cfg.TimeScale))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				sem <- struct{}{}
				defer func() { <-sem }()
				res.drive(cfg, req)
			}(schedule[i])
		}
		wg.Wait()
	case "closed":
		var wg sync.WaitGroup
		next := make(chan Request)
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for req := range next {
					res.drive(cfg, req)
				}
			}()
		}
		for i := range schedule {
			next <- schedule[i]
		}
		close(next)
		wg.Wait()
	default:
		return nil, fmt.Errorf("unknown loop discipline %q", cfg.Loop)
	}
	return res, nil
}

// drive pushes one scheduled request through the retry contract until a
// terminal outcome.
func (r *LiveResult) drive(cfg LiveConfig, req Request) {
	first := time.Now()
	body := cfg.SpecFor(req)
	// The shared cursor spreads first attempts across targets; within one
	// request each retry then advances deterministically, so a failover is
	// guaranteed to reach a different node when more than one is offered
	// (a shared cursor alone can't promise that under concurrency — two
	// racing requests may bump it past each other).
	rot := r.rr.Add(1)
	for attempt := 0; ; attempt++ {
		target := cfg.Targets[(rot+int64(attempt))%int64(len(cfg.Targets))]
		t0 := time.Now()
		resp, err := cfg.Client.Post(target+"/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			// A dead or unreachable node is a failover, not a contract
			// violation: the next attempt's rotation lands on the next
			// target. Only exhausting the retry budget is terminal.
			if attempt < cfg.MaxRetries {
				r.countFailover()
				continue
			}
			r.violate("POST /runs transport error after %d failovers: %v", attempt, err)
			r.countError()
			return
		}
		r.observeSubmit(time.Since(t0))
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()

		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var view struct {
				ID      string `json:"id"`
				Deduped bool   `json:"deduped"`
			}
			if err := json.Unmarshal(payload, &view); err != nil || view.ID == "" {
				r.violate("2xx submission without a job id: %v", err)
				r.countError()
				return
			}
			deduped := resp.StatusCode == http.StatusOK && view.Deduped
			if resp.StatusCode == http.StatusOK && !view.Deduped {
				r.violate("200 submission not marked deduped")
			}
			if r.await(cfg, target, view.ID) {
				r.countDone(deduped, time.Since(first))
			} else {
				r.countError()
			}
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retryAfter, ok := r.checkRetryAfter(resp)
			r.countBounce(resp.StatusCode)
			if attempt >= cfg.MaxRetries {
				r.countError()
				return
			}
			if !ok {
				retryAfter = 1
			}
			time.Sleep(time.Duration(float64(retryAfter) * cfg.RetryAfterScale * float64(time.Second)))
		default:
			// Any other 5xx means this node is broken in a way the retry
			// contract doesn't describe — fail over to the next target
			// immediately rather than honoring a Retry-After it didn't send.
			if resp.StatusCode >= 500 && attempt < cfg.MaxRetries {
				r.countFailover()
				continue
			}
			r.violate("unexpected submission status %d", resp.StatusCode)
			r.countError()
			return
		}
	}
}

// checkRetryAfter enforces the header contract on a 429/503: present,
// integral, and within the daemon's advertised [1, 30] clamp.
func (r *LiveResult) checkRetryAfter(resp *http.Response) (int, bool) {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		r.violate("%d without Retry-After header", resp.StatusCode)
		return 0, false
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 1 || secs > 30 {
		r.violate("%d with out-of-contract Retry-After %q", resp.StatusCode, raw)
		return 0, false
	}
	return secs, true
}

// await polls the job to a terminal state on the node that accepted it;
// true means done.
func (r *LiveResult) await(cfg LiveConfig, target, id string) bool {
	deadline := time.Now().Add(cfg.JobTimeout)
	for time.Now().Before(deadline) {
		resp, err := cfg.Client.Get(target + "/runs/" + id)
		if err != nil {
			r.violate("GET /runs/%s transport error: %v", id, err)
			return false
		}
		var view struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			r.violate("GET /runs/%s undecodable body: %v", id, err)
			return false
		}
		switch view.Status {
		case "done":
			return true
		case "error":
			return false
		}
		time.Sleep(cfg.PollInterval)
	}
	r.violate("job %s did not reach a terminal state in %s", id, cfg.JobTimeout)
	return false
}

func (r *LiveResult) observeSubmit(d time.Duration) {
	r.mu.Lock()
	r.Submit.AddDuration(d)
	r.mu.Unlock()
}

func (r *LiveResult) countDone(deduped bool, wall time.Duration) {
	r.mu.Lock()
	r.Latency.AddDuration(wall)
	if deduped {
		r.Deduped++
	} else {
		r.Accepted++
	}
	r.mu.Unlock()
}

func (r *LiveResult) countBounce(status int) {
	r.mu.Lock()
	if status == http.StatusTooManyRequests {
		r.Rejected429++
	} else {
		r.Unavail503++
	}
	r.mu.Unlock()
}

func (r *LiveResult) countError() {
	r.mu.Lock()
	r.Errors++
	r.mu.Unlock()
}

func (r *LiveResult) countFailover() {
	r.mu.Lock()
	r.Failovers++
	r.mu.Unlock()
}
