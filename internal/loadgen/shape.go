// Package loadgen is the splash4d traffic lab: seeded, replayable load
// schedules in four shapes (steady, burst, diurnal, dedup-hostile), a
// deterministic virtual-clock simulator of the daemon's admission pipeline,
// a live open/closed-loop HTTP runner that verifies the retry contract
// end to end, and an SLO gate that turns latency percentiles and error
// budgets into a CI verdict (BENCH_traffic.json).
//
// The same seed always produces the same schedule, and in sim mode the
// same report bytes — the gate artifact is diffable across runs.
package loadgen

import (
	"fmt"
	"math"
)

// Shape names. Each is a distinct stress pattern for the admission path:
// steady exercises the happy path, burst the 429/Retry-After backpressure
// contract, diurnal slow capacity swings, and dedup-hostile the
// singleflight path (clumps of identical specs in flight together).
const (
	ShapeSteady       = "steady"
	ShapeBurst        = "burst"
	ShapeDiurnal      = "diurnal"
	ShapeDedupHostile = "dedup_hostile"
)

// Shapes lists every schedule shape in gate order.
var Shapes = []string{ShapeSteady, ShapeBurst, ShapeDiurnal, ShapeDedupHostile}

// Request is one scheduled submission.
type Request struct {
	// AtNS is the arrival offset from the run start, in virtual (sim) or
	// real (live) nanoseconds.
	AtNS int64
	// SpecKey identifies the job spec for dedup purposes: requests sharing
	// a key are identical submissions the daemon may singleflight.
	SpecKey string
	// Seed distinguishes specs; requests with equal SpecKey share it.
	Seed int64
}

// ScheduleConfig sizes one shape's schedule.
type ScheduleConfig struct {
	Shape    string
	Requests int
	// SpanNS is the window the arrivals spread over.
	SpanNS int64
	// Seed drives every random choice in the schedule.
	Seed uint64
}

// Schedule builds the arrival list for one shape: sorted by arrival time,
// fully determined by the config.
func Schedule(cfg ScheduleConfig) ([]Request, error) {
	if cfg.Requests <= 0 || cfg.SpanNS <= 0 {
		return nil, fmt.Errorf("schedule needs positive requests and span (got %d, %d)", cfg.Requests, cfg.SpanNS)
	}
	r := newRNG(cfg.Seed)
	switch cfg.Shape {
	case ShapeSteady:
		return steadySchedule(cfg, r), nil
	case ShapeBurst:
		return burstSchedule(cfg, r), nil
	case ShapeDiurnal:
		return diurnalSchedule(cfg, r), nil
	case ShapeDedupHostile:
		return dedupSchedule(cfg, r), nil
	default:
		return nil, fmt.Errorf("unknown shape %q", cfg.Shape)
	}
}

// uniqueSpec gives request i its own spec key, defeating dedup so every
// arrival is a distinct job.
func uniqueSpec(shape string, i int) (string, int64) {
	return fmt.Sprintf("%s-%d", shape, i), int64(i + 1)
}

// steadySchedule spreads arrivals evenly with ±40% gap jitter: a constant
// offered rate with enough noise to avoid phase-locking with the workers.
func steadySchedule(cfg ScheduleConfig, r *rng) []Request {
	gap := cfg.SpanNS / int64(cfg.Requests)
	reqs := make([]Request, cfg.Requests)
	for i := range reqs {
		jitter := int64((r.float64() - 0.5) * 0.8 * float64(gap))
		key, seed := uniqueSpec(ShapeSteady, i)
		reqs[i] = Request{AtNS: clampAt(int64(i)*gap+jitter, cfg.SpanNS), SpecKey: key, Seed: seed}
	}
	sortByArrival(reqs)
	return reqs
}

// burstSchedule compresses 80% of the traffic into four bursts, each 2% of
// the span wide; the rest trickles across the window. The bursts are what
// overrun the admission ring and exercise 429 + Retry-After.
func burstSchedule(cfg ScheduleConfig, r *rng) []Request {
	const bursts = 4
	reqs := make([]Request, cfg.Requests)
	burstWidth := cfg.SpanNS / 50
	for i := range reqs {
		key, seed := uniqueSpec(ShapeBurst, i)
		var at int64
		if i%5 == 0 { // the 20% background trickle
			at = int64(r.float64() * float64(cfg.SpanNS))
		} else {
			b := r.intn(bursts)
			start := int64(b) * cfg.SpanNS / bursts
			at = start + int64(r.float64()*float64(burstWidth))
		}
		reqs[i] = Request{AtNS: clampAt(at, cfg.SpanNS), SpecKey: key, Seed: seed}
	}
	sortByArrival(reqs)
	return reqs
}

// diurnalSchedule modulates the arrival rate with one sine period across
// the span (rate ∝ 1 + 0.8·sin), sampled by inverse-CDF so the shape is
// exact, not approximate: a slow swell and ebb like a day of traffic.
func diurnalSchedule(cfg ScheduleConfig, r *rng) []Request {
	reqs := make([]Request, cfg.Requests)
	for i := range reqs {
		// Stratified u keeps the empirical distribution close to the target
		// density even at small request counts; the jitter term keeps
		// arrivals distinct.
		u := (float64(i) + r.float64()) / float64(cfg.Requests)
		key, seed := uniqueSpec(ShapeDiurnal, i)
		reqs[i] = Request{AtNS: clampAt(diurnalInvCDF(u, cfg.SpanNS), cfg.SpanNS), SpecKey: key, Seed: seed}
	}
	sortByArrival(reqs)
	return reqs
}

// diurnalInvCDF inverts the CDF of rate(t) = 1 + 0.8·sin(2πt/span) by
// bisection (the CDF is strictly increasing).
func diurnalInvCDF(u float64, spanNS int64) int64 {
	cdf := func(x float64) float64 { // x in [0,1], normalized time
		// ∫₀ˣ (1 + 0.8 sin 2πt) dt = x + (0.8/2π)(1 − cos 2πx); total mass 1.
		return x + 0.8/(2*math.Pi)*(1-math.Cos(2*math.Pi*x))
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int64(lo * float64(spanNS))
}

// dedupSchedule emits clumps of eight identical specs arriving within a
// tight window, spread across the span: while the first of a clump is
// still queued or running, the rest must be answered by singleflight.
func dedupSchedule(cfg ScheduleConfig, r *rng) []Request {
	const clump = 8
	reqs := make([]Request, cfg.Requests)
	clumps := (cfg.Requests + clump - 1) / clump
	for i := range reqs {
		c := i / clump
		start := int64(c) * cfg.SpanNS / int64(clumps)
		// The whole clump lands inside 1% of the span.
		at := start + int64(r.float64()*float64(cfg.SpanNS)/100)
		reqs[i] = Request{
			AtNS:    clampAt(at, cfg.SpanNS),
			SpecKey: fmt.Sprintf("%s-clump-%d", ShapeDedupHostile, c),
			Seed:    int64(c + 1),
		}
	}
	sortByArrival(reqs)
	return reqs
}

func clampAt(at, span int64) int64 {
	if at < 0 {
		return 0
	}
	if at >= span {
		return span - 1
	}
	return at
}

// sortByArrival is a simple stable insertion sort: schedules are small
// (thousands at most) and stability keeps equal-time orderings
// deterministic without pulling in sort.SliceStable's reflection.
func sortByArrival(reqs []Request) {
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].AtNS < reqs[j-1].AtNS; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
}
