package loadgen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func testSimConfig() SimConfig {
	return SimConfig{Workers: 4, QueueCap: 8, ServiceNS: 200e6, MaxRetries: 3}
}

func mustSchedule(t *testing.T, cfg ScheduleConfig) []Request {
	t.Helper()
	reqs, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule(%+v): %v", cfg, err)
	}
	return reqs
}

func TestScheduleDeterministicAndSorted(t *testing.T) {
	for _, shape := range Shapes {
		cfg := ScheduleConfig{Shape: shape, Requests: 200, SpanNS: 60e9, Seed: 42}
		a := mustSchedule(t, cfg)
		b := mustSchedule(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", shape)
		}
		c := mustSchedule(t, ScheduleConfig{Shape: shape, Requests: 200, SpanNS: 60e9, Seed: 43})
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", shape)
		}
		if len(a) != 200 {
			t.Fatalf("%s: %d requests, want 200", shape, len(a))
		}
		for i, req := range a {
			if req.AtNS < 0 || req.AtNS >= cfg.SpanNS {
				t.Fatalf("%s: arrival %d at %d outside [0, %d)", shape, i, req.AtNS, cfg.SpanNS)
			}
			if i > 0 && req.AtNS < a[i-1].AtNS {
				t.Fatalf("%s: arrivals not sorted at %d", shape, i)
			}
		}
	}
}

func TestScheduleSpecKeys(t *testing.T) {
	unique := func(reqs []Request) int {
		keys := map[string]bool{}
		for _, r := range reqs {
			keys[r.SpecKey] = true
		}
		return len(keys)
	}
	steady := mustSchedule(t, ScheduleConfig{Shape: ShapeSteady, Requests: 100, SpanNS: 10e9, Seed: 1})
	if got := unique(steady); got != 100 {
		t.Errorf("steady: %d unique specs, want 100 (no dedup pressure)", got)
	}
	hostile := mustSchedule(t, ScheduleConfig{Shape: ShapeDedupHostile, Requests: 100, SpanNS: 10e9, Seed: 1})
	if got := unique(hostile); got != 13 { // ceil(100/8) clumps
		t.Errorf("dedup_hostile: %d unique specs, want 13", got)
	}
}

func TestScheduleRejectsBadConfig(t *testing.T) {
	if _, err := Schedule(ScheduleConfig{Shape: "wat", Requests: 10, SpanNS: 1e9}); err == nil {
		t.Error("unknown shape accepted")
	}
	if _, err := Schedule(ScheduleConfig{Shape: ShapeSteady, Requests: 0, SpanNS: 1e9}); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := testSimConfig()
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeBurst, Requests: 300, SpanNS: 30e9, Seed: 7})
	a, err := Simulate(cfg, sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Error("same seed, different per-request results")
	}
	if a.Accepted != b.Accepted || a.Rejected != b.Rejected || a.Errors != b.Errors {
		t.Errorf("tallies differ: %+v vs %+v", a, b)
	}
}

// TestSimulateAccounting checks conservation: every scheduled request ends
// in exactly one of done/deduped/error, and the latency histogram holds
// exactly the completed ones.
func TestSimulateAccounting(t *testing.T) {
	for _, shape := range Shapes {
		sched := mustSchedule(t, ScheduleConfig{Shape: shape, Requests: 250, SpanNS: 25e9, Seed: 11})
		res, err := Simulate(testSimConfig(), sched, 11)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Accepted + res.Deduped + res.Errors; got != 250 {
			t.Errorf("%s: %d outcomes for 250 requests", shape, got)
		}
		if got := int(res.Latency.N()); got != res.Accepted+res.Deduped {
			t.Errorf("%s: histogram holds %d, want %d completions", shape, got, res.Accepted+res.Deduped)
		}
		for i, rr := range res.Results {
			if rr.Outcome != OutcomeError && rr.LatencyNS <= 0 {
				t.Fatalf("%s: request %d completed with non-positive latency %d", shape, i, rr.LatencyNS)
			}
		}
	}
}

func TestSimulateDedupHostileCoalesces(t *testing.T) {
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeDedupHostile, Requests: 200, SpanNS: 20e9, Seed: 3})
	res, err := Simulate(testSimConfig(), sched, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped == 0 {
		t.Error("dedup-hostile traffic produced zero singleflight hits")
	}
	if res.Deduped <= res.Accepted {
		t.Errorf("dedup-hostile: deduped %d <= accepted %d; clumps are not coalescing", res.Deduped, res.Accepted)
	}
}

func TestSimulateBurstBackpressure(t *testing.T) {
	cfg := SimConfig{Workers: 2, QueueCap: 4, ServiceNS: 500e6, MaxRetries: 2}
	sched := mustSchedule(t, ScheduleConfig{Shape: ShapeBurst, Requests: 400, SpanNS: 20e9, Seed: 9})
	res, err := Simulate(cfg, sched, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Error("burst against a tiny ring produced zero 429s")
	}
	if res.MaxRetryAfterS < 1 || res.MaxRetryAfterS > 30 {
		t.Errorf("MaxRetryAfterS = %d, outside the [1,30] contract", res.MaxRetryAfterS)
	}
	if res.MaxQueueDepth > cfg.QueueCap {
		t.Errorf("queue depth %d exceeded capacity %d", res.MaxQueueDepth, cfg.QueueCap)
	}
	for i, rr := range res.Results {
		if rr.Rejections > cfg.MaxRetries+1 {
			t.Fatalf("request %d bounced %d times; retry budget is %d", i, rr.Rejections, cfg.MaxRetries)
		}
	}
}

func TestGateVerdicts(t *testing.T) {
	res, err := Simulate(testSimConfig(), mustSchedule(t,
		ScheduleConfig{Shape: ShapeSteady, Requests: 100, SpanNS: 30e9, Seed: 5}), 5)
	if err != nil {
		t.Fatal(err)
	}
	pass := Gate(ShapeSteady, 100, res.Latency, res.Accepted, res.Deduped, res.Rejected, res.Errors,
		SLO{P50MaxNS: 1 << 62, P99MaxNS: 1 << 62, ErrorBudget: 1})
	if !pass.Pass || len(pass.Violations) != 0 {
		t.Errorf("lenient SLO failed: %+v", pass.Violations)
	}
	fail := Gate(ShapeSteady, 100, res.Latency, res.Accepted, res.Deduped, res.Rejected, res.Errors,
		SLO{P50MaxNS: 1, P99MaxNS: 1, ErrorBudget: 1})
	if fail.Pass || len(fail.Violations) != 2 {
		t.Errorf("impossible SLO passed: %+v", fail.Violations)
	}
	if fail.P50NS <= 0 || fail.P99NS < fail.P50NS {
		t.Errorf("quantiles inconsistent: p50=%d p99=%d", fail.P50NS, fail.P99NS)
	}
}

// TestReportByteStable is the reproducibility acceptance check in unit
// form: the full sim pipeline, run twice with the same pinned seed, must
// produce identical report bytes.
func TestReportByteStable(t *testing.T) {
	build := func() []byte {
		simCfg := testSimConfig()
		rep := &Report{Mode: "sim", Seed: 42, Workers: simCfg.Workers,
			QueueCap: simCfg.QueueCap, Requests: 150, SpanNS: 15e9}
		slos := SimSLOs(simCfg)
		for _, shape := range Shapes {
			sched := mustSchedule(t, ScheduleConfig{Shape: shape, Requests: 150, SpanNS: 15e9, Seed: 42})
			res, err := Simulate(simCfg, sched, 42)
			if err != nil {
				t.Fatal(err)
			}
			rep.Shapes = append(rep.Shapes, Gate(shape, 150, res.Latency,
				res.Accepted, res.Deduped, res.Rejected, res.Errors, slos[shape]))
		}
		rep.Finalize()
		b, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("pinned-seed reports differ between runs")
	}
	if !strings.Contains(string(a), `"pass": true`) {
		t.Fatalf("pinned-seed sim violates its own SLOs:\n%s", a)
	}
	for _, shape := range Shapes {
		if !strings.Contains(string(a), `"shape": "`+shape+`"`) {
			t.Errorf("report lacks shape %s", shape)
		}
	}
}

func TestFinalizeFailsOnContractCheck(t *testing.T) {
	rep := &Report{ContractChecks: []string{"ok: 429 carried Retry-After", "FAIL: missing Retry-After"}}
	rep.Finalize()
	if rep.Pass {
		t.Error("report passed despite a failed contract check")
	}
}
