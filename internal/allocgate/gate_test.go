// Package allocgate is the dynamic half of the //sync4:zeroalloc contract:
// it enumerates every annotation in the module through the same registry the
// static analyzer uses (analysis.ZeroAllocFuncs), maps each annotated
// function to a runtime probe, and drives testing.AllocsPerRun over it. A
// new annotation without a probe fails here, so the static claim can never
// silently outgrow its dynamic verification.
package allocgate

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/sync4"
	"repro/internal/sync4/classic"
	"repro/internal/sync4/kittest"
	"repro/internal/sync4/lockfree"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// minAnnotations guards against the registry silently emptying (a scan bug
// would otherwise pass this gate vacuously).
const minAnnotations = 90

// coveredElsewhere lists annotated unexported functions this package cannot
// reach; each entry names the in-package test that owns the probe instead.
var coveredElsewhere = map[string]string{
	"(*repro/internal/server.sseEncoder).encode": "internal/server TestSSEEncoderZeroAlloc",
	// lane is Record's claim path; the Recorder probes below exercise it on
	// their first per-thread Record call.
	"(*repro/internal/trace.Recorder).lane": "probed via (*Recorder).Record",
}

// registryEntry is one parsed annotation: package path, receiver type (no
// pointer star), method name.
type registryEntry struct {
	full    string
	pkgPath string
	typ     string
	method  string
}

func parseFullName(f analysis.ZeroAllocFunc) (registryEntry, error) {
	e := registryEntry{full: f.FullName, pkgPath: f.PkgPath}
	name := f.FullName
	// Methods render as "(*pkgpath.type).Method" or "(pkgpath.type).Method".
	if strings.HasPrefix(name, "(") {
		close := strings.Index(name, ")")
		if close < 0 || close+2 > len(name) {
			return e, fmt.Errorf("unparseable method name %q", name)
		}
		recv := strings.TrimPrefix(name[1:close], "*")
		dot := strings.LastIndex(recv, ".")
		if dot < 0 {
			return e, fmt.Errorf("no type in receiver %q", recv)
		}
		e.typ = recv[dot+1:]
		e.method = strings.TrimPrefix(name[close+1:], ".")
		return e, nil
	}
	// Plain function "pkgpath.Func".
	dot := strings.LastIndex(name, ".")
	if dot < 0 {
		return e, fmt.Errorf("unparseable function name %q", name)
	}
	e.method = name[dot+1:]
	return e, nil
}

// familyKey normalizes a receiver type name to the kittest probe key family:
// tracedQueue/instrQueue/queue -> "queue", accumulator -> "accum".
func familyKey(typ string) string {
	base := typ
	for _, prefix := range []string{"traced", "instr"} {
		if strings.HasPrefix(base, prefix) && len(base) > len(prefix) {
			base = strings.ToLower(base[len(prefix):len(prefix)+1]) + base[len(prefix)+1:]
			break
		}
	}
	switch base {
	case "accumulator", "accum":
		return "accum"
	case "spinLock", "lock", "Mutex":
		return "lock"
	case "minMax":
		return "minmax"
	}
	return base
}

// probeSets maps an annotation to the probe(s) exercising it. Wrapper kits
// are probed over both base kits, so "under both kits" holds for every
// traced/instr annotation too.
func probeSets(t *testing.T) map[string]map[string][]func() {
	t.Helper()
	rec := trace.NewRecorder(8, 1<<12)
	var counters sync4.Counters

	kits := map[string][]sync4.Kit{
		"repro/internal/sync4/lockfree": {lockfree.New()},
		"repro/internal/sync4/classic":  {classic.New()},
		// Wrapper annotations live in package sync4; probe them over both
		// base kits, timing enabled so the instrumented timing path runs.
		"repro/internal/sync4": {
			sync4.Trace(classic.New(), rec),
			sync4.Trace(lockfree.New(), rec),
			sync4.Instrument(classic.New(), &counters, true),
			sync4.Instrument(lockfree.New(), &counters, true),
		},
	}
	out := make(map[string]map[string][]func())
	for pkg, ks := range kits {
		merged := make(map[string][]func())
		for _, k := range ks {
			for key, probe := range kittest.ZeroAllocProbes(k) {
				merged[key] = append(merged[key], probe)
			}
		}
		out[pkg] = merged
	}
	return out
}

// directProbes covers annotated functions outside the kit interface: the
// lockfree extras, the trace recorder, the stats histogram, and the
// telemetry span/latency hot path.
func directProbes() map[string][]func() {
	tl := new(lockfree.TicketLock)
	tb := lockfree.NewTreeBarrier(1, 4)
	sc := lockfree.NewStripedCounter(4)
	rec := trace.NewRecorder(8, 1<<12)
	obj := rec.RegisterObject(trace.FamilyCounter)
	h := stats.NewHistogram()
	// A SpanSet sized for one rep: the first probe iterations fill its
	// preallocated spans, the rest exercise the at-capacity drop path —
	// both must be allocation-free.
	ss := telemetry.NewSpanSet(time.Now(), 1)
	reg := telemetry.NewRegistry()
	return map[string][]func(){
		"TicketLock.Lock":       {func() { tl.Lock(); tl.Unlock() }},
		"TicketLock.Unlock":     {func() { tl.Lock(); tl.Unlock() }},
		"TreeBarrier.Wait":      {func() { tb.Wait(0) }},
		"StripedCounter.AddAt":  {func() { sc.AddAt(1, 3) }},
		"StripedCounter.Sum":    {func() { sc.Sum() }},
		"Recorder.Now":          {func() { rec.Now() }},
		"Recorder.Record":       {func() { rec.Record(trace.OpRMW, obj, rec.Now()) }},
		"Histogram.Add":         {func() { h.Add(1234) }},
		"Histogram.AddDuration": {func() { h.AddDuration(1234) }},
		"SpanSet.Mark":          {func() { ss.Mark(telemetry.PhaseRep, 0) }},
		"SpanSet.Annotate":      {func() { ss.Annotate(1, 2) }},
		"Registry.Observe":      {func() { reg.Observe(telemetry.PhaseRep, 1234) }},
	}
}

func TestZeroAllocAnnotationsHold(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	registry := analysis.ZeroAllocFuncs(pkgs)
	if len(registry) < minAnnotations {
		t.Fatalf("registry has %d annotations; want >= %d — did the directive scan break?",
			len(registry), minAnnotations)
	}

	kitProbes := probeSets(t)
	direct := directProbes()

	for _, entry := range registry {
		e, err := parseFullName(entry)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if why, ok := coveredElsewhere[e.full]; ok {
			t.Logf("%s: covered by %s", e.full, why)
			continue
		}
		var probes []func()
		if byKey, ok := kitProbes[e.pkgPath]; ok {
			probes = byKey[familyKey(e.typ)+"."+e.method]
		}
		if probes == nil {
			probes = direct[e.typ+"."+e.method]
		}
		if len(probes) == 0 {
			t.Errorf("%s: no probe mapped — add one to kittest.ZeroAllocProbes, directProbes, or coveredElsewhere", e.full)
			continue
		}
		t.Run(strings.TrimPrefix(e.full, "(*repro/internal/"), func(t *testing.T) {
			for i, probe := range probes {
				if avg := testing.AllocsPerRun(100, probe); avg != 0 {
					t.Errorf("probe %d: %.1f allocs per op; want 0", i, avg)
				}
			}
		})
	}
}
