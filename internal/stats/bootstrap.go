package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// CI is a bootstrap confidence interval for a speedup ratio. Point is the
// plug-in estimate mean(base)/mean(target); [Lo, Hi] is the percentile
// bootstrap interval at the given confidence Level.
type CI struct {
	Point     float64
	Lo, Hi    float64
	Level     float64 // e.g. 0.95
	Resamples int
}

// ExcludesOne reports whether the whole interval lies strictly on one side
// of 1.0 — the "this speedup is statistically real" criterion the paper's
// classic-vs-lockfree comparisons need.
func (c CI) ExcludesOne() bool { return c.Lo > 1 || c.Hi < 1 }

// String renders the interval as "1.42x [1.31, 1.55] @95%".
func (c CI) String() string {
	return fmt.Sprintf("%.3fx [%.3f, %.3f] @%g%%", c.Point, c.Lo, c.Hi, c.Level*100)
}

// BootstrapCI computes a percentile-bootstrap confidence interval for the
// speedup mean(base)/mean(target). Each of the `resamples` rounds draws a
// resample (with replacement) of base and of target independently and
// records the ratio of the resampled means; [Lo, Hi] are the (alpha/2,
// 1-alpha/2) percentiles of those ratios, where alpha = 1 - level.
//
// The resampling stream is driven by seed, so a given input always yields
// the same interval — results stored today remain comparable with results
// recomputed tomorrow. level defaults to 0.95 when out of (0, 1);
// resamples is clamped to at least 100. Inputs must be positive (they are
// run times); an empty or non-positive input is an error.
func BootstrapCI(base, target []float64, level float64, resamples int, seed int64) (CI, error) {
	if len(base) == 0 || len(target) == 0 {
		return CI{}, fmt.Errorf("stats: bootstrap needs non-empty samples (base n=%d, target n=%d)", len(base), len(target))
	}
	for _, x := range base {
		if !(x > 0) || math.IsInf(x, 0) {
			return CI{}, fmt.Errorf("stats: bootstrap base sample contains non-positive value %v", x)
		}
	}
	for _, x := range target {
		if !(x > 0) || math.IsInf(x, 0) {
			return CI{}, fmt.Errorf("stats: bootstrap target sample contains non-positive value %v", x)
		}
	}
	if !(level > 0 && level < 1) {
		level = 0.95
	}
	if resamples < 100 {
		resamples = 100
	}

	ci := CI{
		Point:     mean(base) / mean(target),
		Level:     level,
		Resamples: resamples,
	}

	rng := rand.New(rand.NewSource(seed))
	ratios := make([]float64, resamples)
	for i := range ratios {
		ratios[i] = resampleMean(rng, base) / resampleMean(rng, target)
	}
	sort.Float64s(ratios)

	alpha := 1 - level
	ci.Lo = percentileSorted(ratios, alpha/2)
	ci.Hi = percentileSorted(ratios, 1-alpha/2)
	return ci, nil
}

// SpeedupCI is BootstrapCI over two duration samples, the shape the harness
// produces: it reports how much faster `target` is than `base` (base/target,
// >1 means target wins) with a bootstrap interval.
func SpeedupCI(base, target *Sample, level float64, resamples int, seed int64) (CI, error) {
	return BootstrapCI(durationsToFloats(base.Durations()), durationsToFloats(target.Durations()),
		level, resamples, seed)
}

func durationsToFloats(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d)
	}
	return out
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// resampleMean draws len(xs) values from xs with replacement and returns
// their mean.
func resampleMean(rng *rand.Rand, xs []float64) float64 {
	var sum float64
	for range xs {
		sum += xs[rng.Intn(len(xs))]
	}
	return sum / float64(len(xs))
}

// percentileSorted returns the q-th quantile (0 <= q <= 1) of an ascending
// sorted slice using the nearest-rank method.
func percentileSorted(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
