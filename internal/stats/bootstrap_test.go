package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestBootstrapCIDegenerate(t *testing.T) {
	// Zero-variance inputs: every resample is identical, so the interval
	// collapses onto the exact ratio.
	base := []float64{200, 200, 200}
	target := []float64{100, 100, 100}
	ci, err := BootstrapCI(base, target, 0.95, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Point != 2 || ci.Lo != 2 || ci.Hi != 2 {
		t.Fatalf("degenerate CI = %v, want exactly 2.0 everywhere", ci)
	}
	if !ci.ExcludesOne() {
		t.Fatal("a [2,2] interval must exclude 1.0")
	}
}

func TestBootstrapCIKnownGap(t *testing.T) {
	// A clear 2x gap with mild noise: the interval must exclude 1.0 and
	// bracket the plug-in estimate.
	rng := rand.New(rand.NewSource(7))
	var base, target []float64
	for i := 0; i < 30; i++ {
		base = append(base, 200+10*rng.NormFloat64())
		target = append(target, 100+5*rng.NormFloat64())
	}
	ci, err := BootstrapCI(base, target, 0.95, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.ExcludesOne() {
		t.Fatalf("CI %v fails to exclude 1.0 on a 2x gap", ci)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Fatalf("point estimate %v outside interval [%v, %v]", ci.Point, ci.Lo, ci.Hi)
	}
	if ci.Point < 1.8 || ci.Point > 2.2 {
		t.Fatalf("point estimate %v far from the true 2x ratio", ci.Point)
	}
}

func TestBootstrapCINoGap(t *testing.T) {
	// Identical distributions: the interval must straddle 1.0.
	rng := rand.New(rand.NewSource(9))
	var base, target []float64
	for i := 0; i < 40; i++ {
		base = append(base, 100+8*rng.NormFloat64())
		target = append(target, 100+8*rng.NormFloat64())
	}
	ci, err := BootstrapCI(base, target, 0.95, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ci.ExcludesOne() {
		t.Fatalf("CI %v claims a significant gap between identical distributions", ci)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	base := []float64{210, 190, 205, 197}
	target := []float64{101, 99, 103, 98}
	a, err := BootstrapCI(base, target, 0.95, 500, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapCI(base, target, 0.95, 500, 123)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave different intervals: %v vs %v", a, b)
	}
	c, err := BootstrapCI(base, target, 0.95, 500, 124)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds gave byte-identical intervals; the seed is ignored")
	}
}

func TestBootstrapCIRejectsBadInput(t *testing.T) {
	if _, err := BootstrapCI(nil, []float64{1}, 0.95, 100, 1); err == nil {
		t.Error("accepted empty base")
	}
	if _, err := BootstrapCI([]float64{1}, nil, 0.95, 100, 1); err == nil {
		t.Error("accepted empty target")
	}
	if _, err := BootstrapCI([]float64{1, -2}, []float64{1}, 0.95, 100, 1); err == nil {
		t.Error("accepted negative run time")
	}
	if _, err := BootstrapCI([]float64{0}, []float64{1}, 0.95, 100, 1); err == nil {
		t.Error("accepted zero run time")
	}
	if _, err := BootstrapCI([]float64{math.NaN()}, []float64{1}, 0.95, 100, 1); err == nil {
		t.Error("accepted NaN run time")
	}
}

func TestSpeedupCIMatchesBootstrapCI(t *testing.T) {
	base, target := &Sample{}, &Sample{}
	for _, ms := range []int{20, 22, 21} {
		base.Add(time.Duration(ms) * time.Millisecond)
	}
	for _, ms := range []int{10, 11, 10} {
		target.Add(time.Duration(ms) * time.Millisecond)
	}
	got, err := SpeedupCI(base, target, 0.95, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BootstrapCI(
		[]float64{20e6, 22e6, 21e6},
		[]float64{10e6, 11e6, 10e6}, 0.95, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SpeedupCI %v != BootstrapCI on the same values %v", got, want)
	}
}

// positiveSamples generates two bounded positive samples from quick's
// raw values, so the property tests explore real input space.
func positiveSamples(seedA, seedB uint32, nA, nB uint8) (base, target []float64) {
	ra := rand.New(rand.NewSource(int64(seedA)))
	rb := rand.New(rand.NewSource(int64(seedB)))
	la := int(nA%16) + 2
	lb := int(nB%16) + 2
	for i := 0; i < la; i++ {
		base = append(base, 1+1000*ra.Float64())
	}
	for i := 0; i < lb; i++ {
		target = append(target, 1+1000*rb.Float64())
	}
	return base, target
}

func TestBootstrapCIPropertyOrderedAndFinite(t *testing.T) {
	// For any positive input: Lo <= Hi, everything finite and positive,
	// and the interval brackets the plug-in point estimate (resampled
	// means can never escape [min, max] of the data, and the percentile
	// interval of ratios of such means always contains the full-sample
	// ratio for these bounded inputs).
	prop := func(seedA, seedB uint32, nA, nB uint8, seed int64) bool {
		base, target := positiveSamples(seedA, seedB, nA, nB)
		ci, err := BootstrapCI(base, target, 0.95, 300, seed)
		if err != nil {
			return false
		}
		if !(ci.Lo <= ci.Hi) {
			return false
		}
		for _, v := range []float64{ci.Point, ci.Lo, ci.Hi} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return false
			}
		}
		// The interval must stay inside the hard algebraic bounds of any
		// ratio of resampled means.
		lo := minOf(base) / maxOf(target)
		hi := maxOf(base) / minOf(target)
		return ci.Lo >= lo-1e-9 && ci.Hi <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCIPropertyScaleInvariant(t *testing.T) {
	// Scaling the base sample by c scales the whole interval by c; the
	// resampling indices depend only on the seed and lengths, so the
	// scaled interval is exactly c times the original.
	prop := func(seedA, seedB uint32, nA, nB uint8, seed int64, scaleRaw uint16) bool {
		base, target := positiveSamples(seedA, seedB, nA, nB)
		c := 1 + float64(scaleRaw%1000)/100 // scale factor in [1, 11)
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = c * v
		}
		a, err := BootstrapCI(base, target, 0.95, 300, seed)
		if err != nil {
			return false
		}
		b, err := BootstrapCI(scaled, target, 0.95, 300, seed)
		if err != nil {
			return false
		}
		return closeTo(b.Point, c*a.Point) && closeTo(b.Lo, c*a.Lo) && closeTo(b.Hi, c*a.Hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
