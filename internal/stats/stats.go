// Package stats provides the small statistics toolbox the harness and the
// report generator share: samples of run times, summary statistics, and
// normalization helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of measurements of one configuration.
type Sample struct {
	durations []time.Duration
}

// Add appends a measurement.
func (s *Sample) Add(d time.Duration) { s.durations = append(s.durations, d) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.durations) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.durations {
		sum += d
	}
	return sum / time.Duration(len(s.durations))
}

// Min returns the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	m := s.durations[0]
	for _, d := range s.durations[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the largest measurement, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	m := s.durations[0]
	for _, d := range s.durations[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Median returns the middle measurement (lower of the two middles for even
// sizes), or 0 for an empty sample.
func (s *Sample) Median() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.durations))
	copy(sorted, s.durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]time.Duration, len(s.durations))
	copy(sorted, s.durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Stddev returns the sample standard deviation, or 0 when fewer than two
// measurements exist.
func (s *Sample) Stddev() time.Duration {
	n := len(s.durations)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, d := range s.durations {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// RelStddev returns the standard deviation as a fraction of the mean
// (coefficient of variation), or 0 when the mean is zero.
func (s *Sample) RelStddev() float64 {
	mean := s.Mean()
	if mean == 0 {
		return 0
	}
	return float64(s.Stddev()) / float64(mean)
}

// Durations returns a copy of the raw measurements.
func (s *Sample) Durations() []time.Duration {
	out := make([]time.Duration, len(s.durations))
	copy(out, s.durations)
	return out
}

// Normalized returns s's mean divided by base's mean: the paper's
// "normalized execution time" metric (1.0 = the baseline, lower is better).
// It returns NaN when the baseline mean is zero.
func Normalized(s, base *Sample) float64 {
	b := base.Mean()
	if b == 0 {
		return math.NaN()
	}
	return float64(s.Mean()) / float64(b)
}

// Speedup returns base's mean divided by s's mean (higher is better), or
// NaN when s's mean is zero.
func Speedup(s, base *Sample) float64 {
	m := s.Mean()
	if m == 0 {
		return math.NaN()
	}
	return float64(base.Mean()) / float64(m)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive and NaN
// entries; it returns NaN when no usable entry exists. The paper averages
// normalized execution times; the geometric mean is the standard way to do
// that without letting one benchmark dominate.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs, ignoring NaN entries; it returns
// NaN when no usable entry exists.
func Mean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// String summarizes the sample as "mean ± stddev (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%v ± %v (n=%d)", s.Mean().Round(time.Microsecond),
		s.Stddev().Round(time.Microsecond), s.N())
}
