package stats_test

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

func sample(ds ...time.Duration) *stats.Sample {
	s := &stats.Sample{}
	for _, d := range ds {
		s.Add(d)
	}
	return s
}

func TestEmptySampleIsSafe(t *testing.T) {
	s := &stats.Sample{}
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample returned non-zero statistics")
	}
	if s.RelStddev() != 0 {
		t.Fatal("empty sample RelStddev != 0")
	}
}

func TestBasicStatistics(t *testing.T) {
	s := sample(10, 20, 30, 40, 50)
	if got := s.Mean(); got != 30 {
		t.Errorf("mean = %v, want 30", got)
	}
	if got := s.Min(); got != 10 {
		t.Errorf("min = %v, want 10", got)
	}
	if got := s.Max(); got != 50 {
		t.Errorf("max = %v, want 50", got)
	}
	if got := s.Median(); got != 30 {
		t.Errorf("median = %v, want 30", got)
	}
	// Sample stddev of 10..50 step 10 is sqrt(250) ~ 15.81.
	if got := float64(s.Stddev()); math.Abs(got-math.Sqrt(250)) > 1 {
		t.Errorf("stddev = %v, want ~15.81", got)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if got := sample(10, 20, 30, 40).Median(); got != 20 {
		t.Errorf("median of even sample = %v, want lower middle 20", got)
	}
}

func TestNormalizedAndSpeedupAreReciprocal(t *testing.T) {
	a := sample(100, 100)
	b := sample(200, 200)
	if got := stats.Normalized(a, b); got != 0.5 {
		t.Errorf("Normalized = %v, want 0.5", got)
	}
	if got := stats.Speedup(a, b); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if !math.IsNaN(stats.Normalized(a, &stats.Sample{})) {
		t.Error("Normalized with zero baseline should be NaN")
	}
	if !math.IsNaN(stats.Speedup(&stats.Sample{}, a)) {
		t.Error("Speedup of zero sample should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := stats.GeoMean([]float64{2, 0, -3, math.NaN()}); got != 2 {
		t.Errorf("GeoMean should ignore non-positive and NaN entries: got %v", got)
	}
	if !math.IsNaN(stats.GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestMean(t *testing.T) {
	if got := stats.Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := stats.Mean([]float64{4, math.NaN()}); got != 4 {
		t.Errorf("Mean should skip NaN: got %v", got)
	}
	if !math.IsNaN(stats.Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	s := sample(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {95, 100}, {100, 100},
		{-5, 10}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%g) = %v, want %v", c.p, got, c.want)
		}
	}
	empty := &stats.Sample{}
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty Percentile = %v", got)
	}
}

func TestSampleProperties(t *testing.T) {
	// Property: min <= median <= max, and mean within [min, max].
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := &stats.Sample{}
		for _, r := range raw {
			s.Add(time.Duration(r))
		}
		if s.Min() > s.Median() || s.Median() > s.Max() {
			return false
		}
		if s.Mean() < s.Min() || s.Mean() > s.Max() {
			return false
		}
		// Durations() returns a faithful copy.
		ds := s.Durations()
		if len(ds) != len(raw) {
			return false
		}
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[0] == s.Min() && sorted[len(sorted)-1] == s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	s := sample(time.Millisecond, 3*time.Millisecond)
	got := s.String()
	if got == "" {
		t.Fatal("String() empty")
	}
}
