package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Histogram accumulates non-negative int64 observations — typically
// nanosecond durations of blocking synchronization operations — into
// log-spaced (power-of-two) buckets. It is fixed-size, allocation-free
// after construction, and cheap enough to fold millions of trace events:
// bucketing one value is a single bit-length instruction.
//
// Bucket b (b >= 1) covers values whose binary length is b, i.e. the range
// [2^(b-1), 2^b - 1]; bucket 0 holds exact zeros. Quantiles are estimated
// by linear interpolation inside the selected bucket and clamped to the
// exact observed [Min, Max], so single-valued histograms report quantiles
// exactly.
type Histogram struct {
	counts [65]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

// Add folds one observation in. Negative values are clamped to zero: the
// intended payloads are durations, and a clock anomaly must not corrupt the
// bucket index.
//
//sync4:zeroalloc
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddDuration is Add on a duration's nanosecond count.
//
//sync4:zeroalloc
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Nanoseconds()) }

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the exact sum of all observations (after negative clamping).
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observation, or 0 for an empty histogram.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 for an empty histogram.
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile (0 <= q <= 1). The rank is located
// with nearest-rank over the bucket counts, the value interpolated linearly
// inside the bucket and clamped to the observed extremes. Empty histograms
// report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	// The extremes are tracked exactly, so answer them exactly: p0 is the
	// observed minimum and p100 the observed maximum, with no in-bucket
	// interpolation (which would otherwise drift above the min when the
	// bottom bucket holds several values, and can land below the max in
	// the top buckets where float64 cannot represent the bounds).
	if q <= 0 || math.IsNaN(q) {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank > cum+c {
			cum += c
			continue
		}
		lo, hi := bucketBounds(b)
		// Position of the rank inside this bucket, in (0, 1]. Interpolate
		// in float space and clamp before converting: the top buckets span
		// ranges whose endpoint arithmetic overflows int64.
		pos := float64(rank-cum) / float64(c)
		fv := float64(lo) + pos*float64(hi-lo)
		if fv <= float64(h.min) {
			return h.min
		}
		if fv >= float64(h.max) {
			return h.max
		}
		return int64(fv)
	}
	return h.max
}

// bucketBounds returns the inclusive value range of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	if b >= 64 {
		// Bucket 64 holds values with the top bit set; its upper bound
		// saturates at MaxInt64 since inputs are non-negative int64.
		return math.MaxInt64 / 2, math.MaxInt64
	}
	lo = int64(1) << (b - 1)
	hi = lo<<1 - 1
	return lo, hi
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Bucket is one non-empty histogram bucket, for rendering.
type Bucket struct {
	Lo, Hi int64 // inclusive value range
	Count  int64
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// String summarizes the distribution as durations, the histogram's dominant
// use in this suite.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%v p95=%v max=%v",
		h.n,
		time.Duration(h.Quantile(0.50)).Round(time.Nanosecond),
		time.Duration(h.Quantile(0.95)).Round(time.Nanosecond),
		time.Duration(h.Max()))
}
