package stats_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

func TestHistogramEmpty(t *testing.T) {
	h := stats.NewHistogram()
	if h.N() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: n=%d sum=%d min=%d max=%d",
			h.N(), h.Sum(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if h.Mean() != 0 {
		t.Fatalf("empty mean = %g, want 0", h.Mean())
	}
}

func TestHistogramSingleValueExactQuantiles(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 1000, 123456789} {
		h := stats.NewHistogram()
		h.Add(v)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single value %d: Quantile(%g) = %d", v, q, got)
			}
		}
	}
}

func TestHistogramKnownDistribution(t *testing.T) {
	h := stats.NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.N() != 1000 || h.Sum() != 1000*1001/2 {
		t.Fatalf("n=%d sum=%d", h.N(), h.Sum())
	}
	// Log-bucketed quantiles are estimates; allow a factor-of-two band,
	// which is the bucket resolution.
	p50 := h.Quantile(0.5)
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %d, want within [250, 1000]", p50)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := stats.NewHistogram()
	h.Add(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("negative input not clamped: min=%d max=%d sum=%d", h.Min(), h.Max(), h.Sum())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := stats.NewHistogram(), stats.NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Add(i)
		b.Add(i * 1000)
	}
	a.Merge(b)
	if a.N() != 200 {
		t.Fatalf("merged n = %d, want 200", a.N())
	}
	if a.Min() != 0 || a.Max() != 99000 {
		t.Fatalf("merged extremes: min=%d max=%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramBucketsCoverValues(t *testing.T) {
	h := stats.NewHistogram()
	vals := []int64{0, 1, 2, 3, 4, 100, 1 << 40}
	for _, v := range vals {
		h.Add(v)
	}
	var covered int64
	for _, b := range h.Buckets() {
		if b.Lo > b.Hi {
			t.Fatalf("bucket [%d, %d] inverted", b.Lo, b.Hi)
		}
		covered += b.Count
	}
	if covered != int64(len(vals)) {
		t.Fatalf("buckets cover %d values, want %d", covered, len(vals))
	}
}

func TestHistogramString(t *testing.T) {
	h := stats.NewHistogram()
	h.AddDuration(50 * time.Microsecond)
	s := h.String()
	if s == "" || s == "n=0" {
		t.Fatalf("String() = %q", s)
	}
}

// clampAll maps arbitrary quick-generated inputs onto the histogram's
// domain, mirroring its negative clamping.
func clampAll(xs []int64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		out[i] = x
	}
	return out
}

// Property: N and Sum are exact, and Min/Max match the true extremes.
func TestHistogramQuickExactMoments(t *testing.T) {
	f := func(xs []int64) bool {
		h := stats.NewHistogram()
		var sum int64
		for _, x := range xs {
			h.Add(x)
		}
		vals := clampAll(xs)
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, v := range vals {
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(vals) == 0 {
			return h.N() == 0
		}
		return h.N() == int64(len(vals)) && h.Sum() == sum &&
			h.Min() == lo && h.Max() == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotonically non-decreasing in q and always inside
// the observed [Min, Max].
func TestHistogramQuickQuantileMonotone(t *testing.T) {
	f := func(xs []int64, seed int64) bool {
		if len(xs) == 0 {
			return true
		}
		h := stats.NewHistogram()
		for _, x := range xs {
			h.Add(x)
		}
		rng := rand.New(rand.NewSource(seed))
		qs := make([]float64, 12)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		sort.Float64s(qs)
		prev := int64(math.MinInt64)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles approximate the true nearest-rank quantile within the
// factor-of-two bucket resolution.
func TestHistogramQuickQuantileBucketAccuracy(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		h := stats.NewHistogram()
		for _, x := range xs {
			h.Add(x)
		}
		vals := clampAll(xs)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.25, 0.5, 0.9} {
			rank := int(math.Ceil(q * float64(len(vals))))
			if rank < 1 {
				rank = 1
			}
			truth := vals[rank-1]
			got := h.Quantile(q)
			// The estimate must land within the true value's bucket
			// neighborhood: [truth/2, 2*truth+1] handles the bucket edges.
			if got < truth/2 || (truth < math.MaxInt64/2-1 && got > 2*truth+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileEdgeCases pins the quantile contract at its
// boundaries: out-of-range and NaN q clamp to the extremes, p0/p100 are
// exactly the observed min/max regardless of bucket layout, and a
// population confined to one bucket still answers every quantile from
// inside that bucket's observed range.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := stats.NewHistogram()
	for _, v := range []int64{3, 900, 70000, 1 << 40} {
		h.Add(v)
	}
	// Out-of-range and NaN q clamp instead of panicking or extrapolating.
	if got := h.Quantile(-0.5); got != 3 {
		t.Errorf("Quantile(-0.5) = %d, want observed min 3", got)
	}
	if got := h.Quantile(1.5); got != 1<<40 {
		t.Errorf("Quantile(1.5) = %d, want observed max", got)
	}
	if got := h.Quantile(math.NaN()); got != 3 {
		t.Errorf("Quantile(NaN) = %d, want observed min 3", got)
	}
	// p0 and p100 are exact even though interior quantiles are bucket
	// estimates.
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Errorf("p0/p100 = %d/%d, want min/max %d/%d",
			h.Quantile(0), h.Quantile(1), h.Min(), h.Max())
	}

	// Many distinct values inside one log bucket: every quantile answer
	// must stay within the observed [min, max] of that bucket.
	one := stats.NewHistogram()
	for v := int64(1024); v < 1024+400; v++ {
		one.Add(v)
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		got := one.Quantile(q)
		if got < 1024 || got > 1423 {
			t.Errorf("single-bucket Quantile(%g) = %d, outside observed [1024, 1423]", q, got)
		}
	}
	if one.Quantile(0) != 1024 || one.Quantile(1) != 1423 {
		t.Errorf("single-bucket extremes = %d/%d, want 1024/1423",
			one.Quantile(0), one.Quantile(1))
	}

	// Quantiles are monotone in q even across the clamped edges.
	prev := h.Quantile(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		cur := h.Quantile(q)
		if cur < prev {
			t.Errorf("Quantile(%g) = %d < previous %d; not monotone", q, cur, prev)
		}
		prev = cur
	}

	// The top of the int64 range must not overflow the interpolation.
	big := stats.NewHistogram()
	big.Add(math.MaxInt64)
	big.Add(math.MaxInt64 - 1)
	if got := big.Quantile(0.5); got < math.MaxInt64-1 {
		t.Errorf("near-overflow Quantile(0.5) = %d, want >= MaxInt64-1", got)
	}
	if got := big.Quantile(1); got != math.MaxInt64 {
		t.Errorf("near-overflow p100 = %d, want MaxInt64", got)
	}
}
